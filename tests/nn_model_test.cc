// Model-level tests: forward traces, backprop from arbitrary internal layers
// (the DeepXplore primitive), parameter plumbing, and serialization.
#include <gtest/gtest.h>

#include <memory>

#include "src/nn/batchnorm.h"
#include "src/nn/conv2d.h"
#include "src/nn/dense.h"
#include "src/nn/dropout.h"
#include "src/nn/flatten.h"
#include "src/nn/model.h"
#include "src/nn/pool2d.h"
#include "src/nn/softmax_layer.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace dx {
namespace {

using ::dx::testing::MaxRelError;
using ::dx::testing::NumericalGradient;

Model MakeTinyConvNet(uint64_t seed) {
  Rng rng(seed);
  Model m("tiny", {1, 8, 8});
  auto& c1 = m.Emplace<Conv2D>(1, 3, 3, 3, 1, 0, Activation::kRelu);
  c1.InitParams(rng);
  m.Emplace<Pool2D>(PoolMode::kMax, 2);
  m.Emplace<Flatten>();
  auto& d1 = m.Emplace<Dense>(3 * 3 * 3, 10, Activation::kTanh);
  d1.InitParams(rng);
  auto& d2 = m.Emplace<Dense>(10, 4, Activation::kNone);
  d2.InitParams(rng);
  m.Emplace<SoftmaxLayer>();
  return m;
}

TEST(ModelTest, ShapesPropagateThroughLayers) {
  Model m = MakeTinyConvNet(1);
  EXPECT_EQ(m.num_layers(), 6);
  EXPECT_EQ(m.layer_output_shape(0), (Shape{3, 6, 6}));
  EXPECT_EQ(m.layer_output_shape(1), (Shape{3, 3, 3}));
  EXPECT_EQ(m.layer_output_shape(2), (Shape{27}));
  EXPECT_EQ(m.output_shape(), (Shape{4}));
}

TEST(ModelTest, AddRejectsIncompatibleLayer) {
  Model m("bad", {1, 8, 8});
  EXPECT_THROW(m.Emplace<Dense>(10, 3), std::invalid_argument);
}

TEST(ModelTest, ForwardValidatesInputShape) {
  Model m = MakeTinyConvNet(1);
  EXPECT_THROW(m.Forward(Tensor({1, 7, 7})), std::invalid_argument);
}

TEST(ModelTest, ForwardTraceRecordsEveryLayer) {
  Model m = MakeTinyConvNet(2);
  Rng rng(5);
  const Tensor x = Tensor::RandUniform({1, 8, 8}, rng);
  const ForwardTrace trace = m.Forward(x);
  ASSERT_EQ(trace.outputs.size(), 6u);
  EXPECT_EQ(trace.Output().shape(), (Shape{4}));
  EXPECT_NEAR(trace.Output().Sum(), 1.0f, 1e-5f);  // Softmax normalized.
  // LayerInput(0) is the model input.
  EXPECT_EQ(&trace.LayerInput(0), &trace.input);
}

TEST(ModelTest, PredictHelpers) {
  Model m = MakeTinyConvNet(3);
  Rng rng(5);
  const Tensor x = Tensor::RandUniform({1, 8, 8}, rng);
  const Tensor y = m.Predict(x);
  EXPECT_EQ(m.PredictClass(x), static_cast<int>(y.Argmax()));
  EXPECT_FLOAT_EQ(m.PredictScalar(x), y[0]);
}

TEST(ModelTest, BackwardInputFromOutputMatchesNumeric) {
  Model m = MakeTinyConvNet(4);
  Rng rng(6);
  const Tensor x = Tensor::RandUniform({1, 8, 8}, rng);
  const ForwardTrace trace = m.Forward(x);

  // Gradient of class-0 probability w.r.t. input.
  const int last = m.num_layers() - 1;
  Tensor seed(trace.outputs[static_cast<size_t>(last)].shape());
  seed[0] = 1.0f;
  const Tensor analytic = m.BackwardInput(trace, last, seed);

  const auto scalar = [&](const Tensor& xx) {
    return static_cast<double>(m.Predict(xx)[0]);
  };
  const Tensor numeric = NumericalGradient(scalar, x, 1e-2f);
  EXPECT_LT(MaxRelError(analytic, numeric), 2e-2f);
}

TEST(ModelTest, BackwardInputFromInternalLayerMatchesNumeric) {
  // The DeepXplore primitive: d(hidden neuron)/d(input).
  Model m = MakeTinyConvNet(5);
  Rng rng(7);
  const Tensor x = Tensor::RandUniform({1, 8, 8}, rng);
  const ForwardTrace trace = m.Forward(x);

  const int conv_layer = 0;
  const int neuron = 1;
  Tensor seed(trace.outputs[0].shape());
  m.layer(conv_layer).AddNeuronSeed(&seed, neuron, 1.0f);
  const Tensor analytic = m.BackwardInput(trace, conv_layer, seed);

  const auto scalar = [&](const Tensor& xx) {
    const ForwardTrace t = m.Forward(xx);
    return static_cast<double>(m.layer(conv_layer).NeuronValue(t.outputs[0], neuron));
  };
  const Tensor numeric = NumericalGradient(scalar, x, 1e-2f);
  EXPECT_LT(MaxRelError(analytic, numeric), 2e-2f);
}

TEST(ModelTest, BackwardInputFromDenseHiddenLayerMatchesNumeric) {
  Model m = MakeTinyConvNet(6);
  Rng rng(8);
  const Tensor x = Tensor::RandUniform({1, 8, 8}, rng);
  const ForwardTrace trace = m.Forward(x);

  const int dense_layer = 3;
  const int neuron = 4;
  Tensor seed(trace.outputs[static_cast<size_t>(dense_layer)].shape());
  m.layer(dense_layer).AddNeuronSeed(&seed, neuron, 1.0f);
  const Tensor analytic = m.BackwardInput(trace, dense_layer, seed);

  const auto scalar = [&](const Tensor& xx) {
    const ForwardTrace t = m.Forward(xx);
    return static_cast<double>(t.outputs[static_cast<size_t>(dense_layer)][neuron]);
  };
  const Tensor numeric = NumericalGradient(scalar, x, 1e-2f);
  EXPECT_LT(MaxRelError(analytic, numeric), 2e-2f);
}

TEST(ModelTest, BackwardParamsAccumulatesAllLayerGrads) {
  Model m = MakeTinyConvNet(7);
  Rng rng(9);
  const Tensor x = Tensor::RandUniform({1, 8, 8}, rng);
  const ForwardTrace trace = m.Forward(x);
  std::vector<Tensor> grads = m.InitParamGrads();
  Tensor seed(m.output_shape());
  seed[0] = 1.0f;
  m.BackwardParams(trace, m.num_layers() - 1, seed, &grads);
  // Conv weights (param 0) and dense weights should all receive gradient.
  EXPECT_GT(grads[0].L1Norm(), 0.0f);
  EXPECT_GT(grads[2].L1Norm(), 0.0f);
  EXPECT_GT(grads[4].L1Norm(), 0.0f);
}

TEST(ModelTest, BackwardRejectsBadSeed) {
  Model m = MakeTinyConvNet(8);
  Rng rng(10);
  const Tensor x = Tensor::RandUniform({1, 8, 8}, rng);
  const ForwardTrace trace = m.Forward(x);
  EXPECT_THROW(m.BackwardInput(trace, 99, Tensor({4})), std::out_of_range);
  EXPECT_THROW(m.BackwardInput(trace, m.num_layers() - 1, Tensor({5})),
               std::invalid_argument);
}

TEST(ModelTest, ParamAndNeuronCounts) {
  Model m = MakeTinyConvNet(9);
  // conv: 3*1*3*3 + 3 = 30; dense1: 27*10+10=280; dense2: 10*4+4=44.
  EXPECT_EQ(m.NumParams(), 30 + 280 + 44);
  // Neurons: conv 3 channels + dense 10 + dense 4.
  EXPECT_EQ(m.TotalNeurons(), 17);
}

TEST(ModelTest, SummaryListsLayers) {
  Model m = MakeTinyConvNet(10);
  const std::string s = m.Summary();
  EXPECT_NE(s.find("conv2d"), std::string::npos);
  EXPECT_NE(s.find("softmax"), std::string::npos);
  EXPECT_NE(s.find("'tiny'"), std::string::npos);
}

TEST(ModelTest, SerializationRoundTripPreservesPredictions) {
  Model m = MakeTinyConvNet(11);
  const std::string blob = m.Serialize();
  Model restored = Model::Deserialize(blob);
  EXPECT_EQ(restored.name(), "tiny");
  EXPECT_EQ(restored.num_layers(), m.num_layers());
  EXPECT_EQ(restored.NumParams(), m.NumParams());

  Rng rng(12);
  for (int i = 0; i < 5; ++i) {
    const Tensor x = Tensor::RandUniform({1, 8, 8}, rng);
    const Tensor a = m.Predict(x);
    const Tensor b = restored.Predict(x);
    for (int64_t k = 0; k < a.numel(); ++k) {
      EXPECT_FLOAT_EQ(a[k], b[k]);
    }
  }
}

TEST(ModelTest, SerializationPreservesBatchNormAndDropout) {
  Rng rng(13);
  Model m("bn_net", {2, 4, 4});
  auto& bn = m.Emplace<BatchNorm>(2);
  bn.SetStatistics({0.5f, -0.5f}, {2.0f, 3.0f});
  m.Emplace<Flatten>();
  m.Emplace<Dropout>(0.25f);
  auto& d = m.Emplace<Dense>(32, 3);
  d.InitParams(rng);
  m.Emplace<SoftmaxLayer>();

  Model restored = Model::Deserialize(m.Serialize());
  const Tensor x = Tensor::Randn({2, 4, 4}, rng);
  const Tensor a = m.Predict(x);
  const Tensor b = restored.Predict(x);
  for (int64_t k = 0; k < a.numel(); ++k) {
    EXPECT_FLOAT_EQ(a[k], b[k]);
  }
  auto* restored_bn = dynamic_cast<BatchNorm*>(&restored.layer(0));
  ASSERT_NE(restored_bn, nullptr);
  EXPECT_TRUE(restored_bn->calibrated());
}

TEST(ModelTest, DeserializeRejectsGarbage) {
  EXPECT_THROW(Model::Deserialize("not a model"), std::runtime_error);
}

TEST(ModelTest, DropoutTraceBackwardIsConsistent) {
  // A training-mode trace must reuse its dropout mask during backward.
  Rng rng(14);
  Model m("drop", {8});
  m.Emplace<Dropout>(0.5f);
  auto& d = m.Emplace<Dense>(8, 2);
  d.InitParams(rng);

  Rng train_rng(15);
  const Tensor x({8}, 1.0f);
  const ForwardTrace trace = m.Forward(x, /*training=*/true, &train_rng);
  Tensor seed({2}, std::vector<float>{1.0f, 0.0f});
  const Tensor g = m.BackwardInput(trace, 1, seed);
  // Gradient must be zero exactly where the mask dropped inputs.
  const Tensor& dropped = trace.outputs[0];
  for (int64_t i = 0; i < 8; ++i) {
    if (dropped[i] == 0.0f) {
      EXPECT_FLOAT_EQ(g[i], 0.0f);
    }
  }
}

}  // namespace
}  // namespace dx

// Randomized property tests for the GEMM backward path (PR: backward at
// kernel speed) — the gradient mirror of tests/gemm_kernel_test.cc:
//
//   1. Dense/Conv2D BackwardBatchInto (transposed-weight GEMM + Col2Im,
//      GEMM-against-im2col parameter grads) match the by-value scalar oracle
//      within the kernel backward tolerance across random shapes at batch 1
//      and 8, with and without parameter gradients.
//   2. Col2Im is the exact adjoint of Im2Col: it matches a naive
//      scatter-accumulate bit for bit and satisfies the inner-product
//      identity <Im2Col(x), C> == <x, Col2Im(C)>.
//   3. Backward results are BIT-identical across batch widths (batch-N call
//      vs per-sample batch-1 calls) and across intra-op thread layouts
//      (free-threaded vs forced-serial inside a ParallelFor region) — the
//      invariance the executor's batch/worker determinism rests on.
//   4. The optional param-grads contract: nullptr = input-only (the hot
//      loop), an EMPTY tensor entry skips that parameter, a wrong-sized
//      vector throws, and the grad-input is bit-identical across modes.
//   5. Plan-path gradients: ExecutionPlan::BackwardInputBatch with a
//      param-grads vector matches per-sample Model::BackwardParams sums, and
//      input gradients through conv/dense stacks match central differences
//      at batch 1 and 8.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/nn/conv2d.h"
#include "src/nn/dense.h"
#include "src/nn/execution_plan.h"
#include "src/nn/flatten.h"
#include "src/nn/gemm.h"
#include "src/nn/model.h"
#include "src/nn/pool2d.h"
#include "src/nn/softmax_layer.h"
#include "src/tensor/ops.h"
#include "src/tensor/tensor.h"
#include "src/tensor/workspace.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"
#include "tests/test_util.h"

namespace dx {
namespace {

using testing::ExpectTensorsNear;
using testing::kKernelBackwardTolerance;

constexpr int kTrials = 12;

int RandInt(Rng& rng, int lo, int hi) {
  return static_cast<int>(rng.UniformInt(lo, hi));
}

std::vector<float> RandVec(Rng& rng, int64_t n) {
  std::vector<float> v(static_cast<size_t>(n));
  for (float& x : v) {
    x = static_cast<float>(rng.Uniform(-1.0, 1.0));
  }
  return v;
}

// Backward of the *Into path against the by-value oracle, both fed the SAME
// by-value forward results so the comparison isolates the backward kernels.
// `with_params` also checks dW/db accumulation (both sides start from the
// same random running sum, pinning the += semantics).
void ExpectBackwardIntoNearByValue(const Layer& layer, const Shape& in_shape, int batch,
                                   uint64_t seed, bool with_params) {
  Rng rng(seed);
  const Tensor input = Tensor::RandUniform(BatchedShape(batch, in_shape), rng, -1.0f, 1.0f);
  Tensor aux;
  const Tensor output = layer.ForwardBatch(input, batch, false, nullptr, &aux);
  const Tensor grad_out = Tensor::RandUniform(output.shape(), rng, -1.0f, 1.0f);

  std::vector<Tensor> want_pg;
  std::vector<Tensor> got_pg;
  for (const Tensor* p : layer.Params()) {
    want_pg.push_back(Tensor::RandUniform(p->shape(), rng, -0.1f, 0.1f));
    got_pg.emplace_back(want_pg.back());
  }
  const Tensor want_gin = layer.BackwardBatch(input, output, grad_out, aux, batch,
                                              with_params ? &want_pg : nullptr);
  Workspace ws;
  Tensor got_gin(input.shape());
  layer.BackwardBatchInto(input, output, grad_out, aux, batch, &got_gin, &ws,
                          with_params ? &got_pg : nullptr);

  const std::string what = layer.Describe() + " batch=" + std::to_string(batch) +
                           (with_params ? " +params" : " input-only");
  ExpectTensorsNear(got_gin, want_gin, kKernelBackwardTolerance, what + " grad-input");
  if (with_params) {
    for (size_t p = 0; p < want_pg.size(); ++p) {
      ExpectTensorsNear(got_pg[p], want_pg[p], kKernelBackwardTolerance,
                        what + " param grad " + std::to_string(p));
    }
  }
}

TEST(BackwardKernelTest, DenseBackwardIntoSweepsRandomShapes) {
  Rng rng(0xB1);
  for (int t = 0; t < kTrials; ++t) {
    Dense layer(RandInt(rng, 1, 300), RandInt(rng, 1, 70),
                static_cast<Activation>(RandInt(rng, 0, 3)));
    layer.InitParams(rng);
    for (const int batch : {1, 8}) {
      ExpectBackwardIntoNearByValue(layer, {layer.in_features()}, batch, rng.NextU64(),
                                    /*with_params=*/t % 2 == 0);
    }
  }
}

TEST(BackwardKernelTest, Conv2DBackwardIntoSweepsRandomShapes) {
  Rng rng(0xB2);
  for (int t = 0; t < kTrials; ++t) {
    const int in_ch = RandInt(rng, 1, 4);
    const int kh = RandInt(rng, 1, 5);
    const int kw = RandInt(rng, 1, 5);
    const int stride = RandInt(rng, 1, 3);
    const int pad = RandInt(rng, 0, 3);
    const int in_h = RandInt(rng, 1, 12);
    const int in_w = RandInt(rng, 1, 12);
    if (in_h + 2 * pad < kh || in_w + 2 * pad < kw) {
      continue;  // Conv2D rejects kernels larger than the padded input.
    }
    Conv2D layer(in_ch, RandInt(rng, 1, 6), kh, kw, stride, pad,
                 static_cast<Activation>(RandInt(rng, 0, 3)));
    layer.InitParams(rng);
    for (const int batch : {1, 8}) {
      ExpectBackwardIntoNearByValue(layer, {in_ch, in_h, in_w}, batch, rng.NextU64(),
                                    /*with_params=*/t % 2 == 0);
    }
  }
}

TEST(BackwardKernelTest, Col2ImMatchesNaiveScatterExactly) {
  Rng rng(0xB3);
  for (int t = 0; t < kTrials; ++t) {
    const int c = RandInt(rng, 1, 4);
    const int in_h = RandInt(rng, 1, 9);
    const int in_w = RandInt(rng, 1, 9);
    const int kh = RandInt(rng, 1, 5);
    const int kw = RandInt(rng, 1, 5);
    const int stride = RandInt(rng, 1, 3);
    const int pad = RandInt(rng, 0, 3);
    const int out_h = (in_h + 2 * pad - kh) / stride + 1;
    const int out_w = (in_w + 2 * pad - kw) / stride + 1;
    if (out_h <= 0 || out_w <= 0) {
      continue;
    }
    const int64_t rows = static_cast<int64_t>(c) * kh * kw;
    const int64_t cols = static_cast<int64_t>(out_h) * out_w;
    const std::vector<float> col = RandVec(rng, rows * cols);

    std::vector<float> got(static_cast<size_t>(c) * in_h * in_w, -999.0f);
    Col2Im(col.data(), c, in_h, in_w, kh, kw, stride, pad, out_h, out_w, got.data());

    // Naive scatter in the same fixed (c, ky, kx, oy, ox) order — the fast
    // path must be a pure data-movement optimization, bit for bit.
    std::vector<float> want(static_cast<size_t>(c) * in_h * in_w, 0.0f);
    for (int ch = 0; ch < c; ++ch) {
      for (int ky = 0; ky < kh; ++ky) {
        for (int kx = 0; kx < kw; ++kx) {
          for (int oy = 0; oy < out_h; ++oy) {
            for (int ox = 0; ox < out_w; ++ox) {
              const int iy = oy * stride - pad + ky;
              const int ix = ox * stride - pad + kx;
              if (iy < 0 || iy >= in_h || ix < 0 || ix >= in_w) {
                continue;
              }
              const int64_t row = (static_cast<int64_t>(ch) * kh + ky) * kw + kx;
              const int64_t colidx = static_cast<int64_t>(oy) * out_w + ox;
              want[(static_cast<size_t>(ch) * in_h + iy) * in_w + ix] +=
                  col[static_cast<size_t>(row * cols + colidx)];
            }
          }
        }
      }
    }
    for (size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(got[i], want[i]) << "cell " << i << " (stride=" << stride
                                 << " pad=" << pad << " k=" << kh << "x" << kw << ")";
    }
  }
}

TEST(BackwardKernelTest, Col2ImIsAdjointOfIm2Col) {
  Rng rng(0xB4);
  for (int t = 0; t < kTrials; ++t) {
    const int c = RandInt(rng, 1, 3);
    const int in_h = RandInt(rng, 2, 9);
    const int in_w = RandInt(rng, 2, 9);
    const int kh = RandInt(rng, 1, 4);
    const int kw = RandInt(rng, 1, 4);
    const int stride = RandInt(rng, 1, 2);
    const int pad = RandInt(rng, 0, 2);
    const int out_h = (in_h + 2 * pad - kh) / stride + 1;
    const int out_w = (in_w + 2 * pad - kw) / stride + 1;
    if (out_h <= 0 || out_w <= 0) {
      continue;
    }
    const int64_t image = static_cast<int64_t>(c) * in_h * in_w;
    const int64_t patches = static_cast<int64_t>(c) * kh * kw * out_h * out_w;
    const std::vector<float> x = RandVec(rng, image);
    const std::vector<float> cmat = RandVec(rng, patches);

    std::vector<float> gathered(static_cast<size_t>(patches));
    Im2Col(x.data(), c, in_h, in_w, kh, kw, stride, pad, out_h, out_w, gathered.data());
    std::vector<float> scattered(static_cast<size_t>(image));
    Col2Im(cmat.data(), c, in_h, in_w, kh, kw, stride, pad, out_h, out_w,
           scattered.data());

    // <Im2Col(x), C> == <x, Col2Im(C)>: the same multiset of products up to
    // Col2Im's in-float scatter accumulation, so the sides agree to a few
    // float epsilons relative (not bit-exact — the bit-level contract is
    // pinned by the naive-scatter test above).
    double lhs = 0.0;
    for (int64_t i = 0; i < patches; ++i) {
      lhs += static_cast<double>(gathered[static_cast<size_t>(i)]) *
             cmat[static_cast<size_t>(i)];
    }
    double rhs = 0.0;
    for (int64_t i = 0; i < image; ++i) {
      rhs += static_cast<double>(x[static_cast<size_t>(i)]) *
             scattered[static_cast<size_t>(i)];
    }
    const double scale = std::max({1.0, std::abs(lhs), std::abs(rhs)});
    EXPECT_NEAR(lhs, rhs, 1e-5 * scale)
        << "adjoint identity (stride=" << stride << " pad=" << pad << ")";
  }
}

// Width + thread-layout invariance: the same sample's gradient must come out
// bit-identical whether it is computed in a batch-6 call (big enough that
// the conv's sample-level ParallelFor and the dense GEMM's row-level
// ParallelFor both engage), in a width-1 call (different GEMM M, different
// threading), or with intra-op parallelism forced off (inside a ParallelFor
// region every nested gate sees InParallelRegion() and runs serially).
template <typename MakeLayer>
void ExpectBackwardBitIdenticalAcrossWidthsAndThreads(MakeLayer make_layer,
                                                      const Shape& in_shape, int batch,
                                                      uint64_t seed) {
  const auto layer = make_layer();
  Rng rng(seed);
  const Tensor input = Tensor::RandUniform(BatchedShape(batch, in_shape), rng, -1.0f, 1.0f);
  Tensor aux;
  const Tensor output = layer->ForwardBatch(input, batch, false, nullptr, &aux);
  const Tensor grad_out = Tensor::RandUniform(output.shape(), rng, -1.0f, 1.0f);

  Workspace ws;
  Tensor batched(input.shape());
  layer->BackwardBatchInto(input, output, grad_out, aux, batch, &batched, &ws, nullptr);

  // Forced-serial run of the identical call: inside a ParallelFor region
  // every intra-op gate sees InParallelRegion() and stays serial. (n == 2
  // because a 1-iteration loop shortcuts inline without entering a region;
  // on a threadless pool this degrades to a plain serial call, which is
  // then trivially identical — still a valid, if vacuous, comparison.)
  Tensor serial(input.shape());
  ParallelFor(2, [&](int64_t idx) {
    if (idx != 0) {
      return;
    }
    Workspace ws_serial;
    layer->BackwardBatchInto(input, output, grad_out, aux, batch, &serial, &ws_serial,
                             nullptr);
  });
  for (int64_t i = 0; i < batched.numel(); ++i) {
    ASSERT_EQ(batched[i], serial[i]) << "thread-layout divergence at element " << i;
  }

  // Per-sample width-1 calls.
  const int64_t in_stride = batched.numel() / batch;
  const int64_t out_stride = output.numel() / batch;
  Tensor x1(BatchedShape(1, in_shape));
  Tensor y1(BatchedShape(1, SampleShape(output.shape())));
  Tensor g1(y1.shape());
  Tensor gi1(x1.shape());
  for (int b = 0; b < batch; ++b) {
    std::copy(input.data() + b * in_stride, input.data() + (b + 1) * in_stride, x1.data());
    std::copy(output.data() + b * out_stride, output.data() + (b + 1) * out_stride,
              y1.data());
    std::copy(grad_out.data() + b * out_stride, grad_out.data() + (b + 1) * out_stride,
              g1.data());
    Workspace ws1;
    layer->BackwardBatchInto(x1, y1, g1, Tensor(), 1, &gi1, &ws1, nullptr);
    for (int64_t i = 0; i < in_stride; ++i) {
      ASSERT_EQ(gi1[i], batched[b * in_stride + i])
          << "width divergence at sample " << b << " element " << i;
    }
  }
}

TEST(BackwardKernelTest, Conv2DBackwardBitIdenticalAcrossWidthsAndThreads) {
  // 16 x (8*3*3) x (32*32) ≈ 1.2M flops/sample: past the 1<<20 intra-op gate
  // at batch 6, so the batched run really is threaded when cores allow.
  ExpectBackwardBitIdenticalAcrossWidthsAndThreads(
      [] {
        Rng rng(0xC1);
        auto conv = std::make_unique<Conv2D>(8, 16, 3, 3, 1, 0, Activation::kRelu);
        conv->InitParams(rng);
        return conv;
      },
      {8, 34, 34}, 6, 0xC2);
}

TEST(BackwardKernelTest, DenseBackwardBitIdenticalAcrossWidthsAndThreads) {
  // 8 x 512 x 256 = 1M: exactly at the GEMM gate with M = batch = 8 >= 2*kMR.
  ExpectBackwardBitIdenticalAcrossWidthsAndThreads(
      [] {
        Rng rng(0xC3);
        auto dense = std::make_unique<Dense>(512, 256, Activation::kRelu);
        dense->InitParams(rng);
        return dense;
      },
      {512}, 8, 0xC4);
}

TEST(BackwardKernelTest, ParamGradContractSkipThrowAndInputOnlyIdentity) {
  Rng rng(0xD1);
  Dense layer(24, 10, Activation::kRelu);
  layer.InitParams(rng);
  const int batch = 4;
  const Tensor input = Tensor::RandUniform(BatchedShape(batch, Shape{24}), rng, -1.0f, 1.0f);
  Tensor aux;
  const Tensor output = layer.ForwardBatch(input, batch, false, nullptr, &aux);
  const Tensor grad_out = Tensor::RandUniform(output.shape(), rng, -1.0f, 1.0f);
  Workspace ws;
  Tensor gin(input.shape());

  // Wrong-sized vector throws (by-value and Into alike).
  std::vector<Tensor> too_few(1);
  EXPECT_THROW(layer.BackwardBatchInto(input, output, grad_out, aux, batch, &gin, &ws,
                                       &too_few),
               std::invalid_argument);
  EXPECT_THROW(layer.BackwardBatch(input, output, grad_out, aux, batch, &too_few),
               std::invalid_argument);

  // Full vector: reference result.
  std::vector<Tensor> full;
  for (const Tensor* p : layer.Params()) {
    full.emplace_back(p->shape());
  }
  Tensor gin_full(input.shape());
  layer.BackwardBatchInto(input, output, grad_out, aux, batch, &gin_full, &ws, &full);

  // Empty entry skips that parameter: dW untouched (stays empty), db equals
  // the full run's bit for bit (independent accumulator chains).
  std::vector<Tensor> skip_w(2);
  skip_w[1] = Tensor(layer.Params()[1]->shape());
  Tensor gin_skip(input.shape());
  layer.BackwardBatchInto(input, output, grad_out, aux, batch, &gin_skip, &ws, &skip_w);
  EXPECT_TRUE(skip_w[0].empty());
  ASSERT_EQ(skip_w[1].numel(), full[1].numel());
  for (int64_t i = 0; i < full[1].numel(); ++i) {
    ASSERT_EQ(skip_w[1][i], full[1][i]) << "db element " << i;
  }

  // Input-only mode returns the identical grad-input bits: the grad-input
  // GEMM is the same call in every mode.
  Tensor gin_only(input.shape());
  layer.BackwardBatchInto(input, output, grad_out, aux, batch, &gin_only, &ws, nullptr);
  for (int64_t i = 0; i < gin_full.numel(); ++i) {
    ASSERT_EQ(gin_only[i], gin_full[i]) << "grad-input element " << i;
    ASSERT_EQ(gin_skip[i], gin_full[i]) << "grad-input element " << i;
  }
}

Model MakeStackModel(uint64_t seed) {
  Model m("stack", {1, 10, 10});
  Rng rng(seed);
  m.Emplace<Conv2D>(1, 4, 3, 3, 1, 0, Activation::kRelu).InitParams(rng);
  m.Emplace<Pool2D>(PoolMode::kMax, 2);
  m.Emplace<Flatten>();
  m.Emplace<Dense>(4 * 4 * 4, 6, Activation::kTanh).InitParams(rng);
  m.Emplace<SoftmaxLayer>();
  return m;
}

TEST(BackwardKernelTest, PlanParamGradsMatchPerSampleBackwardParams) {
  const Model model = MakeStackModel(0xE1);
  ExecutionPlan plan = model.Compile(8);
  for (const int width : {1, 8}) {
    Rng rng(0xE2 + static_cast<uint64_t>(width));
    const Tensor input =
        Tensor::RandUniform(BatchedShape(width, model.input_shape()), rng, 0.0f, 1.0f);
    const Tensor seed = Tensor::RandUniform(
        BatchedShape(width, model.output_shape()), rng, -1.0f, 1.0f);
    const int last = model.num_layers() - 1;

    // Oracle: per-sample by-value BackwardParams, summed over the batch.
    std::vector<Tensor> want_pg = model.InitParamGrads();
    const int64_t in_stride = input.numel() / width;
    const int64_t out_stride = seed.numel() / width;
    for (int b = 0; b < width; ++b) {
      Tensor xb(model.input_shape());
      std::copy(input.data() + b * in_stride, input.data() + (b + 1) * in_stride,
                xb.data());
      Tensor sb(model.output_shape());
      std::copy(seed.data() + b * out_stride, seed.data() + (b + 1) * out_stride,
                sb.data());
      const ForwardTrace trace = model.Forward(xb);
      model.BackwardParams(trace, last, std::move(sb), &want_pg);
    }

    std::vector<Tensor> got_pg = model.InitParamGrads();
    model.ForwardBatch(input, plan);
    const Tensor& gin = model.BackwardInputBatch(plan, last, seed, &got_pg);
    EXPECT_EQ(gin.numel(), input.numel());
    ASSERT_EQ(got_pg.size(), want_pg.size());
    for (size_t p = 0; p < want_pg.size(); ++p) {
      ExpectTensorsNear(got_pg[p], want_pg[p], kKernelBackwardTolerance,
                        "plan param grad " + std::to_string(p) + " width " +
                            std::to_string(width));
    }

    // Wrong-sized vector throws before any work.
    std::vector<Tensor> bad(got_pg.size() + 1);
    EXPECT_THROW(model.BackwardInputBatch(plan, last, seed, &bad), std::invalid_argument);
  }
}

// Central differences through the PLAN path itself: f(x) = <seed, plan
// forward(x) last output>, so the check covers the full GEMM forward + GEMM
// backward round trip the executor runs, at both hot-loop widths.
TEST(BackwardKernelTest, PlanBackwardMatchesCentralDifferencesOnStack) {
  const Model model = MakeStackModel(0xE3);
  ExecutionPlan plan = model.Compile(8);
  const int last = model.num_layers() - 1;
  for (const int width : {1, 8}) {
    Rng rng(0xE4 + static_cast<uint64_t>(width));
    // Positive-leaning inputs keep ReLU pre-activations mostly off their
    // kinks (same idea as tests/zoo_gradient_test.cc).
    Tensor x = Tensor::RandUniform(BatchedShape(width, model.input_shape()), rng, 0.05f,
                                   0.95f);
    const Tensor seed = Tensor::RandUniform(
        BatchedShape(width, model.output_shape()), rng, -1.0f, 1.0f);

    model.ForwardBatch(x, plan);
    const Tensor analytic = model.BackwardInputBatch(plan, last, seed);

    const auto f = [&](const Tensor& xx) {
      const BatchTrace& trace = model.ForwardBatch(xx, plan);
      const Tensor& out = trace.outputs.back();
      double acc = 0.0;
      for (int64_t i = 0; i < out.numel(); ++i) {
        acc += static_cast<double>(seed.data()[i]) * out.data()[i];
      }
      return acc;
    };

    const int checks = 24;
    const float eps = 5e-3f;
    int kink_skips = 0;
    for (int c = 0; c < checks; ++c) {
      const int64_t i = rng.UniformInt(0, x.numel() - 1);
      const float orig = x[i];
      x[i] = orig + eps;
      const double plus = f(x);
      x[i] = orig - eps;
      const double minus = f(x);
      x[i] = orig;
      const float numeric = static_cast<float>((plus - minus) / (2.0 * eps));
      const float denom = std::max({1.0f, std::abs(numeric), std::abs(analytic[i])});
      const float rel_err = std::abs(numeric - analytic[i]) / denom;
      if (rel_err > 3e-2f && ++kink_skips <= 2) {
        continue;  // Tolerate at most two ReLU/maxpool kink crossings.
      }
      EXPECT_LT(rel_err, 3e-2f) << "width " << width << " coordinate " << i;
    }
  }
}

}  // namespace
}  // namespace dx

// Randomized property tests for the im2col/GEMM kernel layer
// (src/nn/gemm.h) in the style of tests/batch_property_test.cc: fixed-seed
// random sweeps over shapes chosen to hit every kernel path — full
// microkernel tiles, row/column edge tiles, the N == 1 GEMV case, odd
// strides, asymmetric padding effects, and kernels larger than the padded
// input. Three properties are checked:
//
//   1. GemmBias matches a naive scalar reference within the kernel forward
//      tolerance (the reference uses separate mul+add, the kernel fused
//      ascending-k FMA — same contract as the by-value oracle comparison).
//   2. GemmBias is BIT-identical however the N dimension is partitioned
//      (whole call vs per-column calls) — the width-invariance guarantee
//      the executor's batch determinism rests on.
//   3. Conv2D / Dense ForwardBatchInto (the im2col+GEMM plan path) match
//      the by-value scalar oracle within tolerance at batch 1 and 8, and
//      Im2Col itself matches a direct gather exactly (pure data movement).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/nn/conv2d.h"
#include "src/nn/dense.h"
#include "src/nn/gemm.h"
#include "src/tensor/tensor.h"
#include "src/tensor/workspace.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace dx {
namespace {

using testing::ExpectBuffersNear;
using testing::ExpectTensorsNear;
using testing::kKernelForwardTolerance;

constexpr int kTrials = 12;

int RandInt(Rng& rng, int lo, int hi) {
  return static_cast<int>(rng.UniformInt(lo, hi));
}

std::vector<float> RandVec(Rng& rng, int64_t n) {
  std::vector<float> v(static_cast<size_t>(n));
  for (float& x : v) {
    x = static_cast<float>(rng.Uniform(-1.0, 1.0));
  }
  return v;
}

// Naive reference: separate multiply and add, ascending k (the same
// per-element order the scalar by-value kernels use).
std::vector<float> NaiveGemmBias(int M, int N, int K, const float* A, int lda,
                                 const float* B, int ldb, const float* bias) {
  std::vector<float> C(static_cast<size_t>(M) * N);
  for (int m = 0; m < M; ++m) {
    for (int n = 0; n < N; ++n) {
      float acc = bias != nullptr ? bias[m] : 0.0f;
      for (int k = 0; k < K; ++k) {
        acc += A[static_cast<size_t>(m) * lda + k] * B[static_cast<size_t>(k) * ldb + n];
      }
      C[static_cast<size_t>(m) * N + n] = acc;
    }
  }
  return C;
}

TEST(GemmKernelTest, MatchesNaiveReferenceAcrossRandomShapes) {
  Rng rng(0x6E);
  for (int t = 0; t < kTrials; ++t) {
    // Straddle the 4x16 (AVX2) blocking: M and N cover below-one-tile,
    // exact-tile, and tile-plus-edge; K covers the length of the chain.
    const int M = RandInt(rng, 1, 21);
    const int N = RandInt(rng, 1, 37);
    const int K = RandInt(rng, 1, 64);
    const std::vector<float> A = RandVec(rng, static_cast<int64_t>(M) * K);
    const std::vector<float> B = RandVec(rng, static_cast<int64_t>(K) * N);
    const std::vector<float> bias = RandVec(rng, M);
    const bool use_bias = rng.Bernoulli(0.5);

    std::vector<float> C(static_cast<size_t>(M) * N, -999.0f);
    GemmBias(M, N, K, A.data(), K, B.data(), N, use_bias ? bias.data() : nullptr,
             C.data(), N);
    const std::vector<float> want =
        NaiveGemmBias(M, N, K, A.data(), K, B.data(), N,
                      use_bias ? bias.data() : nullptr);
    ExpectBuffersNear(C.data(), want.data(), static_cast<int64_t>(M) * N,
                      kKernelForwardTolerance,
                      "gemm M=" + std::to_string(M) + " N=" + std::to_string(N) +
                          " K=" + std::to_string(K));
  }
}

TEST(GemmKernelTest, BitIdenticalUnderColumnPartition) {
  Rng rng(0x6F);
  for (int t = 0; t < kTrials; ++t) {
    const int M = RandInt(rng, 1, 13);
    const int N = RandInt(rng, 2, 40);
    const int K = RandInt(rng, 1, 48);
    const std::vector<float> A = RandVec(rng, static_cast<int64_t>(M) * K);
    const std::vector<float> B = RandVec(rng, static_cast<int64_t>(K) * N);
    const std::vector<float> bias = RandVec(rng, M);

    std::vector<float> whole(static_cast<size_t>(M) * N);
    GemmBias(M, N, K, A.data(), K, B.data(), N, bias.data(), whole.data(), N);

    // Column by column: every output element must come out bit-identical,
    // because each element is one fixed ascending-k chain regardless of how
    // many columns share the call (this is what makes plan results
    // independent of batch width).
    std::vector<float> cols(static_cast<size_t>(M) * N);
    for (int n = 0; n < N; ++n) {
      GemmBias(M, 1, K, A.data(), K, B.data() + n, N, bias.data(), cols.data() + n, N);
    }
    for (int64_t i = 0; i < static_cast<int64_t>(M) * N; ++i) {
      ASSERT_EQ(whole[static_cast<size_t>(i)], cols[static_cast<size_t>(i)])
          << "element " << i << " (M=" << M << " N=" << N << " K=" << K << ")";
    }
  }
}

TEST(GemmKernelTest, Im2ColMatchesDirectGatherExactly) {
  Rng rng(0x70);
  for (int t = 0; t < kTrials; ++t) {
    const int c = RandInt(rng, 1, 4);
    const int in_h = RandInt(rng, 1, 9);
    const int in_w = RandInt(rng, 1, 9);
    const int kh = RandInt(rng, 1, 5);
    const int kw = RandInt(rng, 1, 5);
    const int stride = RandInt(rng, 1, 3);  // Odd and even strides.
    const int pad = RandInt(rng, 0, 3);     // Includes kernel > padded input.
    const int out_h = (in_h + 2 * pad - kh) / stride + 1;
    const int out_w = (in_w + 2 * pad - kw) / stride + 1;
    if (out_h <= 0 || out_w <= 0) {
      continue;
    }
    const std::vector<float> x = RandVec(rng, static_cast<int64_t>(c) * in_h * in_w);

    const int64_t rows = static_cast<int64_t>(c) * kh * kw;
    const int64_t cols = static_cast<int64_t>(out_h) * out_w;
    std::vector<float> got(static_cast<size_t>(rows * cols), -999.0f);
    Im2Col(x.data(), c, in_h, in_w, kh, kw, stride, pad, out_h, out_w, got.data());

    for (int ch = 0; ch < c; ++ch) {
      for (int ky = 0; ky < kh; ++ky) {
        for (int kx = 0; kx < kw; ++kx) {
          for (int oy = 0; oy < out_h; ++oy) {
            for (int ox = 0; ox < out_w; ++ox) {
              const int iy = oy * stride - pad + ky;
              const int ix = ox * stride - pad + kx;
              const float want =
                  (iy >= 0 && iy < in_h && ix >= 0 && ix < in_w)
                      ? x[(static_cast<size_t>(ch) * in_h + iy) * in_w + ix]
                      : 0.0f;
              const int64_t row = (static_cast<int64_t>(ch) * kh + ky) * kw + kx;
              const int64_t col = static_cast<int64_t>(oy) * out_w + ox;
              ASSERT_EQ(got[static_cast<size_t>(row * cols + col)], want)
                  << "c=" << ch << " ky=" << ky << " kx=" << kx << " oy=" << oy
                  << " ox=" << ox << " (stride=" << stride << " pad=" << pad << ")";
            }
          }
        }
      }
    }
  }
}

// The integrated plan path: Conv2D/Dense ForwardBatchInto (im2col + GEMM +
// SIMD, workspace-backed) against the by-value scalar oracle.
void ExpectForwardIntoNearByValue(const Layer& layer, const Shape& in_shape, int batch,
                                  uint64_t seed) {
  Rng rng(seed);
  const Tensor input = Tensor::RandUniform(BatchedShape(batch, in_shape), rng, -1.0f, 1.0f);
  Tensor want_aux;
  const Tensor want = layer.ForwardBatch(input, batch, false, nullptr, &want_aux);
  Workspace ws;
  Tensor got(want.shape());
  Tensor got_aux;
  layer.ForwardBatchInto(input, batch, false, nullptr, &got, &got_aux, &ws);
  ExpectTensorsNear(got, want, kKernelForwardTolerance,
                    layer.Describe() + " batch=" + std::to_string(batch));
}

TEST(GemmKernelTest, Conv2DForwardIntoSweepsRandomShapes) {
  Rng rng(0x71);
  for (int t = 0; t < kTrials; ++t) {
    const int in_ch = RandInt(rng, 1, 4);
    const int kh = RandInt(rng, 1, 5);
    const int kw = RandInt(rng, 1, 5);
    const int stride = RandInt(rng, 1, 3);
    const int pad = RandInt(rng, 0, 3);
    const int in_h = RandInt(rng, 1, 12);
    const int in_w = RandInt(rng, 1, 12);
    // Conv2D rejects kernels larger than the padded input; keep the cases
    // where the kernel exceeds the RAW input but padding covers it (the
    // all-border patches are the interesting edge).
    if (in_h + 2 * pad < kh || in_w + 2 * pad < kw) {
      continue;
    }
    Conv2D layer(in_ch, RandInt(rng, 1, 6), kh, kw, stride, pad,
                 static_cast<Activation>(RandInt(rng, 0, 3)));
    layer.InitParams(rng);
    for (const int batch : {1, 8}) {
      ExpectForwardIntoNearByValue(layer, {in_ch, in_h, in_w}, batch, rng.NextU64());
    }
  }
}

TEST(GemmKernelTest, DenseForwardIntoSweepsRandomShapes) {
  Rng rng(0x72);
  for (int t = 0; t < kTrials; ++t) {
    Dense layer(RandInt(rng, 1, 300), RandInt(rng, 1, 70),
                static_cast<Activation>(RandInt(rng, 0, 3)));
    layer.InitParams(rng);
    for (const int batch : {1, 8}) {
      ExpectForwardIntoNearByValue(layer, {layer.in_features()}, batch, rng.NextU64());
    }
  }
}

}  // namespace
}  // namespace dx

// Domain-constraint property tests: each constraint must only ever produce
// update directions and projections that keep inputs valid for its domain.
#include <gtest/gtest.h>

#include <cmath>

#include "src/constraints/constraint.h"
#include "src/constraints/image_constraints.h"
#include "src/constraints/malware_constraints.h"
#include "src/data/drebin.h"
#include "src/data/pdf.h"
#include "src/util/rng.h"

namespace dx {
namespace {

// ---- Lighting ----------------------------------------------------------------------------

TEST(LightingTest, UniformDirectionFollowsMeanSign) {
  LightingConstraint c;
  Rng rng(1);
  Tensor grad({1, 4, 4}, 0.5f);
  grad[0] = -1.0f;  // Mean still positive.
  const Tensor dir = c.Apply(grad, Tensor({1, 4, 4}), rng);
  for (int64_t i = 0; i < dir.numel(); ++i) {
    EXPECT_FLOAT_EQ(dir[i], 1.0f);
  }
  Tensor neg({1, 4, 4}, -0.2f);
  const Tensor dir2 = c.Apply(neg, Tensor({1, 4, 4}), rng);
  for (int64_t i = 0; i < dir2.numel(); ++i) {
    EXPECT_FLOAT_EQ(dir2[i], -1.0f);
  }
}

TEST(LightingTest, ProjectionClampsPixels) {
  LightingConstraint c;
  Tensor x({1, 2, 2}, std::vector<float>{-0.5f, 0.5f, 1.5f, 1.0f});
  c.ProjectInput(&x);
  EXPECT_FLOAT_EQ(x[0], 0.0f);
  EXPECT_FLOAT_EQ(x[2], 1.0f);
}

// ---- Occlusion ---------------------------------------------------------------------------

TEST(OcclusionTest, GradientConfinedToOneRectangle) {
  OcclusionConstraint c(3, 4);
  Rng rng(2);
  Tensor grad = Tensor::Randn({2, 10, 12}, rng);
  const Tensor dir = c.Apply(grad, Tensor({2, 10, 12}), rng);
  // Count nonzero columns/rows: must fit in a 3x4 window per channel.
  int nonzero = 0;
  for (int64_t i = 0; i < dir.numel(); ++i) {
    nonzero += dir[i] != 0.0f ? 1 : 0;
  }
  EXPECT_LE(nonzero, 2 * 3 * 4);
  EXPECT_GT(nonzero, 0);
  // Where nonzero, the direction must equal the raw gradient.
  for (int64_t i = 0; i < dir.numel(); ++i) {
    if (dir[i] != 0.0f) {
      EXPECT_FLOAT_EQ(dir[i], grad[i]);
    }
  }
}

TEST(OcclusionTest, PicksHighestMassPosition) {
  OcclusionConstraint c(2, 2);
  Tensor grad({1, 6, 6});
  // Plant a hot 2x2 block at (3,2).
  grad.at({0, 3, 2}) = 5.0f;
  grad.at({0, 3, 3}) = 5.0f;
  grad.at({0, 4, 2}) = 5.0f;
  grad.at({0, 4, 3}) = 5.0f;
  grad.at({0, 0, 0}) = 1.0f;
  Rng rng(3);
  const Tensor dir = c.Apply(grad, Tensor({1, 6, 6}), rng);
  EXPECT_FLOAT_EQ(dir.at({0, 3, 2}), 5.0f);
  EXPECT_FLOAT_EQ(dir.at({0, 0, 0}), 0.0f);
}

TEST(OcclusionTest, RejectsBadGeometry) {
  EXPECT_THROW(OcclusionConstraint(0, 3), std::invalid_argument);
  OcclusionConstraint c(30, 30);
  Rng rng(4);
  EXPECT_THROW(c.Apply(Tensor({1, 8, 8}), Tensor({1, 8, 8}), rng), std::invalid_argument);
  OcclusionConstraint flat(2, 2);
  EXPECT_THROW(flat.Apply(Tensor({64}), Tensor({64}), rng), std::invalid_argument);
}

// ---- BlackRects --------------------------------------------------------------------------

TEST(BlackRectsTest, OnlyDarkeningPatchesSurvive) {
  BlackRectsConstraint c(10, 2);
  Rng rng(5);
  // All-positive gradient: every patch would brighten -> all zero.
  Tensor bright({1, 8, 8}, 0.5f);
  const Tensor none = c.Apply(bright, Tensor({1, 8, 8}), rng);
  EXPECT_FLOAT_EQ(none.L1Norm(), 0.0f);
  // All-negative gradient: selected patches pass through.
  Tensor dark({1, 8, 8}, -0.5f);
  const Tensor some = c.Apply(dark, Tensor({1, 8, 8}), rng);
  EXPECT_GT(some.L1Norm(), 0.0f);
  for (int64_t i = 0; i < some.numel(); ++i) {
    EXPECT_LE(some[i], 0.0f);
  }
}

TEST(BlackRectsTest, PatchesAreSmall) {
  BlackRectsConstraint c(1, 2);
  Rng rng(6);
  Tensor dark({1, 12, 12}, -1.0f);
  const Tensor dir = c.Apply(dark, Tensor({1, 12, 12}), rng);
  int nonzero = 0;
  for (int64_t i = 0; i < dir.numel(); ++i) {
    nonzero += dir[i] != 0.0f ? 1 : 0;
  }
  EXPECT_LE(nonzero, 4);  // One 2x2 patch.
}

// ---- Drebin ------------------------------------------------------------------------------

TEST(DrebinConstraintTest, FlipsOnlyUnsetManifestFeatures) {
  DrebinConstraint c;
  Rng rng(7);
  Tensor x({kDrebinFeatureCount});
  x[3] = 1.0f;  // Already-set manifest feature.
  Tensor grad({kDrebinFeatureCount});
  grad[3] = 10.0f;                        // Set feature: ineligible.
  grad[kDrebinManifestFeatures] = 9.0f;   // Code feature: ineligible.
  grad[7] = 5.0f;                         // Best eligible.
  grad[9] = 2.0f;
  const Tensor dir = c.Apply(grad, x, rng);
  EXPECT_FLOAT_EQ(dir[7], 1.0f);
  EXPECT_FLOAT_EQ(dir.Sum(), 1.0f);
}

TEST(DrebinConstraintTest, NoPositiveGradientMeansNoChange) {
  DrebinConstraint c;
  Rng rng(8);
  Tensor x({kDrebinFeatureCount});
  Tensor grad({kDrebinFeatureCount}, -1.0f);
  const Tensor dir = c.Apply(grad, x, rng);
  EXPECT_FLOAT_EQ(dir.L1Norm(), 0.0f);
}

TEST(DrebinConstraintTest, ProjectionSnapsBinary) {
  DrebinConstraint c;
  Tensor x({kDrebinFeatureCount}, 0.3f);
  x[0] = 0.9f;
  c.ProjectInput(&x);
  EXPECT_FLOAT_EQ(x[0], 1.0f);
  EXPECT_FLOAT_EQ(x[1], 0.0f);
}

TEST(DrebinConstraintTest, NeverDeletesFeatures) {
  // Property sweep: from any state, applying the constrained update never
  // turns a 1 into a 0.
  DrebinConstraint c;
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    Tensor x({kDrebinFeatureCount});
    for (int64_t i = 0; i < x.numel(); ++i) {
      x[i] = rng.Bernoulli(0.2) ? 1.0f : 0.0f;
    }
    const Tensor before = x;
    const Tensor grad = Tensor::Randn(x.shape(), rng);
    const Tensor dir = c.Apply(grad, x, rng);
    x.Axpy(1.0f, dir);
    c.ProjectInput(&x);
    for (int64_t i = 0; i < x.numel(); ++i) {
      EXPECT_GE(x[i], before[i]);
    }
  }
}

// ---- PDF ---------------------------------------------------------------------------------

TEST(PdfConstraintTest, FrozenFeaturesGetZeroGradient) {
  PdfConstraint c;
  Rng rng(10);
  const auto& specs = PdfFeatureSpecs();
  Tensor x({kPdfFeatureCount}, 0.5f);
  Tensor grad({kPdfFeatureCount}, 1.0f);
  const Tensor dir = c.Apply(grad, x, rng);
  for (int f = 0; f < kPdfFeatureCount; ++f) {
    if (!specs[static_cast<size_t>(f)].modifiable) {
      EXPECT_FLOAT_EQ(dir[f], 0.0f) << specs[static_cast<size_t>(f)].name;
    }
  }
}

TEST(PdfConstraintTest, IncrementOnlyBlocksDecreases) {
  PdfConstraint c;
  Rng rng(11);
  const auto& specs = PdfFeatureSpecs();
  Tensor x({kPdfFeatureCount}, 0.5f);
  Tensor grad({kPdfFeatureCount}, -1.0f);
  const Tensor dir = c.Apply(grad, x, rng);
  for (int f = 0; f < kPdfFeatureCount; ++f) {
    const auto& spec = specs[static_cast<size_t>(f)];
    if (spec.increment_only) {
      EXPECT_FLOAT_EQ(dir[f], 0.0f) << spec.name;
    }
  }
  // author_num is modifiable in both directions.
  EXPECT_LT(dir[4], 0.0f);
}

TEST(PdfConstraintTest, SaturatedFeaturesStop) {
  PdfConstraint c;
  Rng rng(12);
  Tensor x({kPdfFeatureCount}, 1.0f);
  Tensor grad({kPdfFeatureCount}, 1.0f);
  const Tensor dir = c.Apply(grad, x, rng);
  EXPECT_FLOAT_EQ(dir.L1Norm(), 0.0f);
}

TEST(PdfConstraintTest, ProjectionYieldsIntegerRawValues) {
  PdfConstraint c;
  Rng rng(13);
  Tensor x = Tensor::RandUniform({kPdfFeatureCount}, rng);
  c.ProjectInput(&x);
  for (int f = 0; f < kPdfFeatureCount; ++f) {
    const float raw = PdfRawValue(f, x[f]);
    EXPECT_NEAR(raw, std::round(raw), 1e-4f);
    EXPECT_GE(x[f], 0.0f);
    EXPECT_LE(x[f], 1.0f);
  }
}

// ---- Unconstrained -----------------------------------------------------------------------

TEST(UnconstrainedTest, PassesGradientThrough) {
  UnconstrainedImage c;
  Rng rng(14);
  const Tensor grad = Tensor::Randn({1, 4, 4}, rng);
  const Tensor dir = c.Apply(grad, Tensor({1, 4, 4}), rng);
  for (int64_t i = 0; i < grad.numel(); ++i) {
    EXPECT_FLOAT_EQ(dir[i], grad[i]);
  }
}

}  // namespace
}  // namespace dx

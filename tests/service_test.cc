// Campaign service: concurrent campaigns multiplexed over one daemon must
// stay bit-identical to standalone Session::Run; pause/resume and daemon
// kill/restart/resume must not change results; the ctl protocol must reject
// malformed and conflicting requests; /health and /metrics must serve
// parseable introspection (Prometheus text format).
#include <gtest/gtest.h>

#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/constraints/image_constraints.h"
#include "src/core/domain.h"
#include "src/core/session.h"
#include "src/corpus/corpus.h"
#include "src/data/dataset.h"
#include "src/models/zoo.h"
#include "src/nn/dense.h"
#include "src/nn/model.h"
#include "src/nn/softmax_layer.h"
#include "src/service/campaign_manager.h"
#include "src/service/client.h"
#include "src/service/daemon.h"
#include "src/service/net.h"
#include "src/util/json.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace dx {
namespace {

// ---- Toy domains -----------------------------------------------------------
// Two cheap registered domains (tiny dense classifiers over a 2-d task) so
// campaigns train in milliseconds and two concurrent campaigns genuinely
// exercise different domains.

Dataset MakeToyTask(int n, uint64_t seed) {
  Rng rng(seed);
  Dataset ds{"svc_toy", {2}, 2, {}, {}};
  while (ds.size() < n) {
    Tensor x({2});
    x[0] = rng.NextFloat();
    x[1] = rng.NextFloat();
    if (std::abs(x[0] - x[1]) < 0.08f) {
      continue;
    }
    const float label = x[0] > x[1] ? 0.0f : 1.0f;
    ds.Add(std::move(x), label);
  }
  return ds;
}

void RegisterToyDomains() {
  static const bool once = [] {
    const struct {
      const char* key;
      const char* prefix;
      uint64_t data_seed;
    } kDomains[] = {{"svc_toy_a", "SVA", 300}, {"svc_toy_b", "SVB", 400}};
    for (const auto& d : kDomains) {
      DomainSpec spec;
      spec.key = d.key;
      spec.display_name = d.key;
      spec.description = "service_test toy domain";
      spec.make_dataset = [](int n, uint64_t seed) { return MakeToyTask(n, seed); };
      spec.training.train_samples = 500;
      spec.training.test_samples = 60;
      spec.training.epochs = 8;
      spec.training.learning_rate = 5e-3f;
      spec.training.data_seed = d.data_seed;
      spec.training.fast_train_divisor = 1;
      spec.training.fast_test_divisor = 1;
      const int hidden[] = {16, 24, 12};
      for (int m = 0; m < 3; ++m) {
        DomainModelSpec model;
        model.name = std::string(d.prefix) + "_" + std::to_string(m + 1);
        model.arch = "dense-" + std::to_string(hidden[m]);
        model.paper_arch = "out-of-paper toy";
        const int width = hidden[m];
        const std::string name = model.name;
        model.build = [width, name](uint64_t seed) {
          Rng rng(seed);
          Model model_out(name, {2});
          model_out.Emplace<Dense>(2, width, Activation::kRelu).InitParams(rng);
          model_out.Emplace<Dense>(width, 2).InitParams(rng);
          model_out.Emplace<SoftmaxLayer>();
          return model_out;
        };
        spec.models.push_back(std::move(model));
      }
      DomainConstraintSpec constraint;
      constraint.name = "free";
      constraint.make = [] { return std::make_unique<UnconstrainedImage>(); };
      spec.constraints.push_back(std::move(constraint));
      spec.default_constraint = "free";
      spec.engine_defaults.lambda1 = 2.5f;
      spec.engine_defaults.step = 0.05f;
      spec.engine_defaults.max_iterations_per_seed = 120;
      RegisterDomain(std::move(spec));
    }
    return true;
  }();
  (void)once;
}

// ---- Helpers ---------------------------------------------------------------

// What CampaignManager does for a fresh campaign, done standalone: the
// reference results every bit-identity assertion compares against.
RunStats StandaloneRun(const CampaignSpec& spec, int workers) {
  const DomainSpec& domain = GetDomain(spec.domain);
  const std::string constraint_key = ResolveDomainConstraint(domain, spec.constraint);
  std::unique_ptr<Constraint> constraint = MakeDomainConstraint(domain, constraint_key);
  std::vector<Model> models = ModelZoo::TrainedDomain(spec.domain);
  std::vector<Model*> ptrs;
  for (Model& m : models) {
    ptrs.push_back(&m);
  }
  SessionConfig config;
  config.engine = domain.engine_defaults;
  config.engine.rng_seed = spec.rng_seed;
  if (spec.max_iterations_per_seed > 0) {
    config.engine.max_iterations_per_seed = spec.max_iterations_per_seed;
  }
  config.metric = spec.metric;
  config.objective = spec.objective;
  config.scheduler = spec.scheduler;
  config.batch_size = spec.batch_size;
  config.sync_interval = spec.sync_interval;
  config.workers = workers;
  Session session(ptrs, constraint.get(), config);
  const Dataset& test = ModelZoo::TestSet(spec.domain);
  std::vector<Tensor> seeds;
  for (int i = 0; i < spec.seeds; ++i) {
    seeds.push_back(test.inputs[static_cast<size_t>(i) % test.size()]);
  }
  RunOptions options;
  options.max_tests = spec.max_tests;
  options.max_seed_passes = spec.max_seed_passes;
  options.coverage_goal = spec.coverage_goal;
  return session.Run(seeds, options);
}

void ExpectSameResults(const RunStats& daemon_side, const RunStats& standalone) {
  ASSERT_EQ(daemon_side.tests.size(), standalone.tests.size());
  EXPECT_EQ(daemon_side.seeds_tried, standalone.seeds_tried);
  EXPECT_EQ(daemon_side.seeds_skipped, standalone.seeds_skipped);
  EXPECT_EQ(daemon_side.total_iterations, standalone.total_iterations);
  EXPECT_EQ(daemon_side.forward_passes, standalone.forward_passes);
  EXPECT_FLOAT_EQ(daemon_side.mean_coverage, standalone.mean_coverage);
  for (size_t i = 0; i < daemon_side.tests.size(); ++i) {
    EXPECT_EQ(daemon_side.tests[i].input.values(), standalone.tests[i].input.values())
        << "test " << i;
    EXPECT_EQ(daemon_side.tests[i].seed_index, standalone.tests[i].seed_index);
    EXPECT_EQ(daemon_side.tests[i].iterations, standalone.tests[i].iterations);
    EXPECT_EQ(daemon_side.tests[i].deviating_model, standalone.tests[i].deviating_model);
    EXPECT_EQ(daemon_side.tests[i].task_ordinal, standalone.tests[i].task_ordinal);
    EXPECT_EQ(daemon_side.tests[i].labels, standalone.tests[i].labels);
  }
}

CampaignStatus WaitFor(CampaignManager& manager, uint64_t id,
                       const std::function<bool(const CampaignStatus&)>& pred,
                       double timeout_seconds = 60.0) {
  Timer timer;
  CampaignStatus status = manager.Status(id);
  while (!pred(status)) {
    if (timer.ElapsedSeconds() > timeout_seconds) {
      ADD_FAILURE() << "campaign " << id << " stuck in "
                    << CampaignStateName(status.state) << " after "
                    << timeout_seconds << "s (error: " << status.error << ")";
      return status;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    status = manager.Status(id);
  }
  return status;
}

bool Terminal(const CampaignStatus& status) {
  return status.state == CampaignState::kDone ||
         status.state == CampaignState::kFailed ||
         status.state == CampaignState::kCancelled;
}

Json SubmitRequest(const CampaignSpec& spec) {
  Json request = Json::Object();
  request["cmd"] = Json("submit");
  request["domain"] = Json(spec.domain);
  request["seeds"] = Json(spec.seeds);
  request["max_seed_passes"] = Json(spec.max_seed_passes);
  request["max_iterations_per_seed"] = Json(spec.max_iterations_per_seed);
  request["rng_seed"] = Json(spec.rng_seed);
  request["batch_size"] = Json(spec.batch_size);
  request["sync_interval"] = Json(spec.sync_interval);
  if (!spec.corpus_dir.empty()) {
    request["corpus_dir"] = Json(spec.corpus_dir);
  }
  if (spec.resume) {
    request["resume"] = Json(true);
  }
  return request;
}

std::string TempDir(const std::string& name) {
  const std::string dir =
      ::testing::TempDir() + "service_test_" +
      ::testing::UnitTest::GetInstance()->current_test_info()->name() + "_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

CampaignSpec ToySpec(const std::string& domain) {
  RegisterToyDomains();
  CampaignSpec spec;
  spec.domain = domain;
  spec.seeds = 14;
  spec.max_seed_passes = 2;
  spec.sync_interval = 4;
  return spec;
}

DaemonOptions TestDaemonOptions() {
  DaemonOptions options;
  options.port = 0;       // ephemeral: tests never collide on ports
  options.http_port = 0;
  options.manager.campaign_workers = 2;
  options.manager.compute_threads = 2;
  options.manager.slice_batches = 1;
  return options;
}

// ---- Bit-identity ----------------------------------------------------------

TEST(ServiceTest, ConcurrentCampaignsMatchStandalone) {
  CampaignSpec spec_a = ToySpec("svc_toy_a");
  CampaignSpec spec_b = ToySpec("svc_toy_b");
  spec_b.seeds = 10;
  spec_b.rng_seed = 77;
  spec_b.batch_size = 3;

  // Standalone references first (also warms the trained-model disk cache).
  // Different worker counts on purpose: the invariant covers any.
  const RunStats standalone_a = StandaloneRun(spec_a, 1);
  const RunStats standalone_b = StandaloneRun(spec_b, 3);
  ASSERT_GT(standalone_a.tests.size() + standalone_b.tests.size(), 0u);

  Daemon daemon(TestDaemonOptions());
  daemon.Start();

  // Submit through the real ctl socket, concurrently in one daemon.
  const Json response_a =
      CtlRequest("127.0.0.1", daemon.port(), SubmitRequest(spec_a));
  const Json response_b =
      CtlRequest("127.0.0.1", daemon.port(), SubmitRequest(spec_b));
  ASSERT_TRUE(response_a.GetBool("ok", false)) << response_a.Dump();
  ASSERT_TRUE(response_b.GetBool("ok", false)) << response_b.Dump();
  const uint64_t id_a = static_cast<uint64_t>(response_a.At("id").AsInt());
  const uint64_t id_b = static_cast<uint64_t>(response_b.At("id").AsInt());

  const CampaignStatus done_a = WaitFor(daemon.manager(), id_a, Terminal);
  const CampaignStatus done_b = WaitFor(daemon.manager(), id_b, Terminal);
  ASSERT_EQ(done_a.state, CampaignState::kDone) << done_a.error;
  ASSERT_EQ(done_b.state, CampaignState::kDone) << done_b.error;

  ExpectSameResults(daemon.manager().Results(id_a), standalone_a);
  ExpectSameResults(daemon.manager().Results(id_b), standalone_b);

  // The ctl `results` view agrees with the in-process stats.
  Json results_request = Json::Object();
  results_request["cmd"] = Json("results");
  results_request["id"] = Json(id_a);
  const Json results = CtlRequest("127.0.0.1", daemon.port(), results_request);
  ASSERT_TRUE(results.GetBool("ok", false)) << results.Dump();
  EXPECT_EQ(results.At("seeds_tried").AsInt(), standalone_a.seeds_tried);
  EXPECT_EQ(results.At("tests").AsArray().size(), standalone_a.tests.size());
}

TEST(ServiceTest, PauseResumeIsBitIdentical) {
  CampaignSpec spec = ToySpec("svc_toy_a");
  // ~28 sync batches with a fat per-seed iteration budget: a wide-enough
  // window that the pause request reliably lands mid-flight.
  spec.max_seed_passes = 8;
  spec.max_iterations_per_seed = 250;
  spec.sync_interval = 4;
  const RunStats standalone = StandaloneRun(spec, 2);

  Daemon daemon(TestDaemonOptions());
  daemon.Start();
  const uint64_t id = daemon.manager().Submit(spec);

  WaitFor(daemon.manager(), id, [](const CampaignStatus& s) {
    return s.progress.batches >= 3 || Terminal(s);
  });
  ASSERT_TRUE(daemon.manager().Pause(id));
  const CampaignStatus paused = WaitFor(daemon.manager(), id, [](const CampaignStatus& s) {
    return s.state == CampaignState::kPaused || Terminal(s);
  });
  ASSERT_EQ(paused.state, CampaignState::kPaused);
  const uint64_t paused_batches = paused.progress.batches;

  // While paused, nothing moves.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(daemon.manager().Status(id).progress.batches, paused_batches);

  ASSERT_TRUE(daemon.manager().Resume(id));
  const CampaignStatus done = WaitFor(daemon.manager(), id, Terminal);
  ASSERT_EQ(done.state, CampaignState::kDone) << done.error;

  ExpectSameResults(daemon.manager().Results(id), standalone);
}

TEST(ServiceTest, DrainRestartResumeIsBitIdentical) {
  const std::string corpus_dir = TempDir("corpus");
  CampaignSpec spec = ToySpec("svc_toy_a");
  spec.max_seed_passes = 8;
  spec.max_iterations_per_seed = 250;
  spec.corpus_dir = corpus_dir;
  CampaignSpec uninterrupted = spec;
  uninterrupted.corpus_dir.clear();
  const RunStats standalone = StandaloneRun(uninterrupted, 2);

  // First daemon: run a few batches, then drain (the graceful-shutdown path
  // `dxplored --drain` takes) and kill the daemon.
  {
    Daemon daemon(TestDaemonOptions());
    daemon.Start();
    const uint64_t id = daemon.manager().Submit(spec);
    WaitFor(daemon.manager(), id, [](const CampaignStatus& s) {
      return s.progress.batches >= 2 || Terminal(s);
    });
    daemon.manager().Drain();
    const CampaignStatus drained = daemon.manager().Status(id);
    ASSERT_EQ(drained.state, CampaignState::kPaused)
        << "drain must checkpoint-and-pause, got "
        << CampaignStateName(drained.state);
    ASSERT_LT(drained.progress.batches,
              static_cast<uint64_t>(standalone.seeds_tried));  // genuinely mid-run
    daemon.Stop();
  }

  // The checkpointed corpus is resumable and complete enough to validate.
  {
    Corpus corpus(corpus_dir);
    ASSERT_TRUE(corpus.initialized());
    ASSERT_TRUE(corpus.has_checkpoint());
    ASSERT_FALSE(corpus.checkpoint().complete);
  }

  // Second daemon (fresh process state): resume from the corpus alone.
  Daemon daemon(TestDaemonOptions());
  daemon.Start();
  CampaignSpec resume_spec;
  resume_spec.corpus_dir = corpus_dir;
  resume_spec.resume = true;
  const Json response =
      CtlRequest("127.0.0.1", daemon.port(), SubmitRequest(resume_spec));
  ASSERT_TRUE(response.GetBool("ok", false)) << response.Dump();
  const uint64_t id = static_cast<uint64_t>(response.At("id").AsInt());
  const CampaignStatus done = WaitFor(daemon.manager(), id, Terminal);
  ASSERT_EQ(done.state, CampaignState::kDone) << done.error;

  ExpectSameResults(daemon.manager().Results(id), standalone);
}

// ---- Error paths -----------------------------------------------------------

TEST(ServiceTest, MalformedRequestsAreRejected) {
  RegisterToyDomains();
  Daemon daemon(TestDaemonOptions());
  daemon.Start();

  // Raw garbage over the real socket: parse failure becomes an error reply.
  {
    Socket conn = TcpConnect("127.0.0.1", daemon.port());
    WriteAll(conn, "this is not json\n");
    LineReader reader(conn);
    std::string line;
    ASSERT_TRUE(reader.ReadLine(&line));
    const Json response = Json::Parse(line);
    EXPECT_FALSE(response.GetBool("ok", true));
    EXPECT_NE(response.GetString("error", ""), "");
  }

  const auto expect_error = [&](const std::string& request_text,
                                const std::string& fragment) {
    const Json response = daemon.Handle(Json::Parse(request_text));
    EXPECT_FALSE(response.GetBool("ok", true)) << request_text;
    EXPECT_NE(response.GetString("error", "").find(fragment), std::string::npos)
        << request_text << " -> " << response.Dump();
  };
  expect_error(R"({})", "cmd");
  expect_error(R"({"cmd":"frobnicate"})", "unknown cmd");
  expect_error(R"({"cmd":"status"})", "missing key");
  expect_error(R"({"cmd":"status","id":999})", "unknown campaign");
  expect_error(R"({"cmd":"pause","id":"one"})", "expected number");
  expect_error(R"({"cmd":"submit","domain":"no_such_domain"})", "unknown domain");
  expect_error(R"({"cmd":"submit","domain":"svc_toy_a","seeds":0})", "seeds");
  expect_error(R"({"cmd":"submit","resume":true})", "corpus_dir");
  expect_error(R"({"cmd":"results","id":12345})", "unknown campaign");
}

TEST(ServiceTest, DoubleSubmitOnOneCorpusIsRejected) {
  Daemon daemon(TestDaemonOptions());
  daemon.Start();
  const std::string corpus_dir = TempDir("corpus");

  // A long-running durable campaign claims the corpus dir...
  CampaignSpec spec = ToySpec("svc_toy_a");
  spec.max_seed_passes = 200;
  spec.corpus_dir = corpus_dir;
  const uint64_t id = daemon.manager().Submit(spec);

  // ...so a second submit against the same dir conflicts while it is live.
  const Json conflict =
      CtlRequest("127.0.0.1", daemon.port(), SubmitRequest(spec));
  EXPECT_FALSE(conflict.GetBool("ok", true));
  EXPECT_NE(conflict.GetString("error", "").find("already in use"),
            std::string::npos)
      << conflict.Dump();

  // Results of a non-DONE campaign are refused too.
  Json results_request = Json::Object();
  results_request["cmd"] = Json("results");
  results_request["id"] = Json(id);
  const Json results = CtlRequest("127.0.0.1", daemon.port(), results_request);
  EXPECT_FALSE(results.GetBool("ok", true));

  // Let the campaign finish at least one batch (so its corpus exists on disk
  // with a checkpoint) before cancelling — a cancel that lands before the
  // first slice tears the campaign down without ever claiming the dir.
  WaitFor(daemon.manager(), id, [](const CampaignStatus& s) {
    return s.progress.batches >= 1 || Terminal(s);
  });
  ASSERT_TRUE(daemon.manager().Cancel(id));
  const CampaignStatus cancelled = WaitFor(daemon.manager(), id, Terminal);
  EXPECT_EQ(cancelled.state, CampaignState::kCancelled);

  // The cancelled campaign checkpointed; a *fresh* submit into its dir must
  // still be refused (resume is the only way to continue a recorded corpus).
  CampaignSpec fresh = ToySpec("svc_toy_a");
  fresh.corpus_dir = corpus_dir;
  EXPECT_THROW(daemon.manager().Submit(fresh), std::invalid_argument);

  // Resuming a directory that holds nothing is refused.
  CampaignSpec bad_resume;
  bad_resume.corpus_dir = TempDir("empty");
  bad_resume.resume = true;
  EXPECT_THROW(daemon.manager().Submit(bad_resume), std::invalid_argument);
}

// ---- Introspection plane ---------------------------------------------------

// A line of the Prometheus text format: comment or `name{labels} value`.
void ExpectPrometheusLine(const std::string& line) {
  if (line.empty() || line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
    return;
  }
  const size_t space = line.rfind(' ');
  ASSERT_NE(space, std::string::npos) << line;
  std::string name = line.substr(0, space);
  const std::string value = line.substr(space + 1);
  const size_t brace = name.find('{');
  if (brace != std::string::npos) {
    ASSERT_EQ(name.back(), '}') << line;
    name = name.substr(0, brace);
  }
  ASSERT_FALSE(name.empty()) << line;
  for (char c : name) {
    ASSERT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':')
        << line;
  }
  if (value != "NaN" && value != "+Inf" && value != "-Inf") {
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    ASSERT_EQ(*end, '\0') << "unparseable sample value in: " << line;
  }
}

TEST(ServiceTest, HealthAndMetricsAreServedAndParseable) {
  CampaignSpec spec = ToySpec("svc_toy_a");
  StandaloneRun(spec, 1);  // warm the model cache so the campaign is quick

  Daemon daemon(TestDaemonOptions());
  daemon.Start();
  const uint64_t id = daemon.manager().Submit(spec);
  const CampaignStatus done = WaitFor(daemon.manager(), id, Terminal);
  ASSERT_EQ(done.state, CampaignState::kDone) << done.error;

  // /health over real HTTP.
  const Json health =
      Json::Parse(HttpGet("127.0.0.1", daemon.http_port(), "/health"));
  EXPECT_EQ(health.GetString("status", ""), "ok");
  EXPECT_GE(health.GetInt("campaigns", 0), 1);

  // /metrics over real HTTP: every line must parse, and the families the
  // issue pins (per-campaign tests/s, differences found, coverage %, phase
  // timings) must be present.
  const std::string metrics =
      HttpGet("127.0.0.1", daemon.http_port(), "/metrics");
  std::istringstream lines(metrics);
  std::string line;
  int samples = 0;
  while (std::getline(lines, line)) {
    ExpectPrometheusLine(line);
    if (!line.empty() && line[0] != '#') {
      ++samples;
    }
  }
  EXPECT_GT(samples, 10);
  for (const char* family :
       {"dxplored_campaign_tests_per_second", "dxplored_campaign_tests_total",
        "dxplored_campaign_coverage_ratio", "dxplored_executor_phase_seconds",
        "dxplored_campaigns_submitted_total", "dxplored_uptime_seconds"}) {
    EXPECT_NE(metrics.find(family), std::string::npos) << "missing " << family;
  }
  EXPECT_NE(metrics.find("phase=\"forward\""), std::string::npos);
  EXPECT_NE(metrics.find("domain=\"svc_toy_a\""), std::string::npos);

  // Unknown paths 404 (HttpGet surfaces non-200 as an exception).
  EXPECT_THROW(HttpGet("127.0.0.1", daemon.http_port(), "/nope"),
               std::runtime_error);
}

}  // namespace
}  // namespace dx

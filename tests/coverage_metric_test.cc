// The pluggable CoverageMetric interface: factory lookup, k-multisection
// bucket math, top-k tie handling, Merge/Clone semantics (commutative,
// associative, idempotent, and equal to a serial run — the algebra parallel
// worker merging relies on), and Serialize/Deserialize round trips.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <stdexcept>

#include "src/coverage/coverage_metric.h"
#include "src/coverage/kmultisection_coverage.h"
#include "src/coverage/neuron_coverage.h"
#include "src/coverage/topk_coverage.h"
#include "src/nn/dense.h"
#include "src/nn/model.h"
#include "src/nn/softmax_layer.h"
#include "src/util/rng.h"

namespace dx {
namespace {

// One linear layer with hand-set weights, so neuron i's value for input x is
// exactly weights[i] * x. exclude_output_layer is disabled in these tests so
// the single layer is tracked.
Model LinearModel(const std::vector<float>& weights) {
  Model m("linear", {1});
  auto& dense = m.Emplace<Dense>(1, static_cast<int>(weights.size()));
  for (size_t i = 0; i < weights.size(); ++i) {
    dense.weight()[static_cast<int64_t>(i)] = weights[i];
  }
  return m;
}

CoverageOptions RawOptions() {
  CoverageOptions opts;
  opts.scale_per_layer = false;
  opts.exclude_output_layer = false;
  return opts;
}

Tensor Scalar(float v) {
  Tensor x({1});
  x[0] = v;
  return x;
}

// ---- Factory -----------------------------------------------------------------------------

TEST(CoverageMetricFactoryTest, BuildsRegisteredMetricsByName) {
  const Model m = LinearModel({1.0f, 2.0f});
  const CoverageOptions opts = RawOptions();
  for (const std::string& name : {"neuron", "kmultisection", "topk"}) {
    const auto metric = MakeCoverageMetric(name, m, opts);
    ASSERT_NE(metric, nullptr) << name;
    EXPECT_EQ(metric->name(), name);
    EXPECT_FLOAT_EQ(metric->Coverage(), 0.0f);
  }
  const auto names = CoverageMetricNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "kmultisection"), names.end());
  EXPECT_THROW(MakeCoverageMetric("no-such-metric", m, opts), std::invalid_argument);
}

TEST(CoverageMetricFactoryTest, RegistrationExtendsTheRegistry) {
  const Model m = LinearModel({1.0f});
  RegisterCoverageMetric("neuron-alias",
                         [](const Model& model, const CoverageOptions& options) {
                           return std::make_unique<NeuronCoverageTracker>(model, options);
                         });
  const auto metric = MakeCoverageMetric("neuron-alias", m, RawOptions());
  EXPECT_EQ(metric->name(), "neuron");
}

// ---- k-multisection ----------------------------------------------------------------------

class KMultisectionTest : public ::testing::Test {
 protected:
  KMultisectionTest() : model_(LinearModel({1.0f, 2.0f})) {
    CoverageOptions opts = RawOptions();
    opts.kmc_sections = 4;
    metric_ = std::make_unique<KMultisectionCoverage>(model_, opts);
    // Neuron 0 spans [0, 1], neuron 1 spans [0, 2].
    metric_->ProfileSeed(model_, model_.Forward(Scalar(0.0f)));
    metric_->ProfileSeed(model_, model_.Forward(Scalar(1.0f)));
  }

  Model model_;
  std::unique_ptr<KMultisectionCoverage> metric_;
};

TEST_F(KMultisectionTest, SectionMathSplitsTheProfiledRange) {
  ASSERT_TRUE(metric_->profiled());
  EXPECT_EQ(metric_->sections(), 4);
  EXPECT_EQ(metric_->total_items(), 2 * 4);
  // Neuron 0: range [0, 1], k = 4 -> sections of width 0.25.
  EXPECT_EQ(metric_->SectionOf({0, 0}, 0.0f), 0);    // At the low edge.
  EXPECT_EQ(metric_->SectionOf({0, 0}, 0.1f), 0);
  EXPECT_EQ(metric_->SectionOf({0, 0}, 0.3f), 1);
  EXPECT_EQ(metric_->SectionOf({0, 0}, 0.6f), 2);
  EXPECT_EQ(metric_->SectionOf({0, 0}, 0.999f), 3);
  EXPECT_EQ(metric_->SectionOf({0, 0}, 1.0f), 3);    // At the high edge.
  // Out-of-range values fold into the boundary sections.
  EXPECT_EQ(metric_->SectionOf({0, 0}, -5.0f), 0);
  EXPECT_EQ(metric_->SectionOf({0, 0}, 7.0f), 3);
  // Neuron 1: range [0, 2] -> sections of width 0.5.
  EXPECT_EQ(metric_->SectionOf({0, 1}, 0.6f), 1);
  EXPECT_EQ(metric_->SectionOf({0, 1}, 1.2f), 2);
}

TEST_F(KMultisectionTest, UpdateCoversExactlyTheHitSections) {
  // x = 0.55: neuron 0 value 0.55 -> section 2; neuron 1 value 1.1 -> section 2.
  metric_->Update(model_, model_.Forward(Scalar(0.55f)));
  EXPECT_EQ(metric_->covered_items(), 2);
  EXPECT_FLOAT_EQ(metric_->Coverage(), 2.0f / 8.0f);
  EXPECT_TRUE(metric_->IsSectionCovered({0, 0}, 2));
  EXPECT_TRUE(metric_->IsSectionCovered({0, 1}, 2));
  EXPECT_FALSE(metric_->IsSectionCovered({0, 0}, 0));
  // Re-hitting the same sections adds nothing.
  metric_->Update(model_, model_.Forward(Scalar(0.55f)));
  EXPECT_EQ(metric_->covered_items(), 2);
}

TEST_F(KMultisectionTest, UnprofiledMetricCoversNothing) {
  CoverageOptions opts = RawOptions();
  opts.kmc_sections = 4;
  KMultisectionCoverage fresh(model_, opts);
  EXPECT_FALSE(fresh.profiled());
  EXPECT_EQ(fresh.SectionOf({0, 0}, 0.5f), -1);
  fresh.Update(model_, model_.Forward(Scalar(0.5f)));
  EXPECT_EQ(fresh.covered_items(), 0);
}

TEST(KMultisectionPickTest, PickUncoveredSkipsSaturatedNeurons) {
  // ReLU pair so the neurons' relative positions decouple: neuron 0 is
  // max(0, x), neuron 1 is max(0, -x).
  Model m("relu_pair", {1});
  auto& dense = m.Emplace<Dense>(1, 2, Activation::kRelu);
  dense.weight()[0] = 1.0f;
  dense.weight()[1] = -1.0f;
  CoverageOptions opts = RawOptions();
  opts.kmc_sections = 4;
  KMultisectionCoverage metric(m, opts);
  metric.ProfileSeed(m, m.Forward(Scalar(-1.0f)));  // Ranges: both [0, 1].
  metric.ProfileSeed(m, m.Forward(Scalar(1.0f)));
  // Positive inputs saturate neuron 0's four sections while neuron 1 stays
  // pinned at 0 (only its section 0 is hit).
  for (const float v : {0.05f, 0.3f, 0.6f, 0.95f}) {
    metric.Update(m, m.Forward(Scalar(v)));
  }
  EXPECT_EQ(metric.covered_items(), 4 + 1);
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    NeuronId id;
    ASSERT_TRUE(metric.PickUncovered(rng, &id));
    EXPECT_EQ(id.index, 1) << "neuron 0 is saturated and must not be picked";
  }
}

// ---- top-k -------------------------------------------------------------------------------

TEST(TopKCoverageTest, CoversTheKMostActivatedPerLayer) {
  // Neuron values for input x > 0: (1x, 3x, 2x) -> top-1 is neuron 1.
  Model m = LinearModel({1.0f, 3.0f, 2.0f});
  CoverageOptions opts = RawOptions();
  opts.top_k = 1;
  TopKNeuronCoverage metric(m, opts);
  metric.Update(m, m.Forward(Scalar(1.0f)));
  EXPECT_TRUE(metric.IsCovered({0, 1}));
  EXPECT_FALSE(metric.IsCovered({0, 0}));
  EXPECT_FALSE(metric.IsCovered({0, 2}));
  EXPECT_FLOAT_EQ(metric.Coverage(), 1.0f / 3.0f);
  // Negative input flips the order: top-1 becomes neuron 0 (value -1 > -3).
  metric.Update(m, m.Forward(Scalar(-1.0f)));
  EXPECT_TRUE(metric.IsCovered({0, 0}));
  EXPECT_FLOAT_EQ(metric.Coverage(), 2.0f / 3.0f);
}

TEST(TopKCoverageTest, TiesAtTheKthValueAreInclusive) {
  // Neurons 1 and 2 tie for the top value; with k = 1 both must count.
  Model m = LinearModel({1.0f, 2.0f, 2.0f});
  CoverageOptions opts = RawOptions();
  opts.top_k = 1;
  TopKNeuronCoverage metric(m, opts);
  metric.Update(m, m.Forward(Scalar(1.0f)));
  EXPECT_FALSE(metric.IsCovered({0, 0}));
  EXPECT_TRUE(metric.IsCovered({0, 1}));
  EXPECT_TRUE(metric.IsCovered({0, 2}));
}

TEST(TopKCoverageTest, LayersNoLargerThanKSaturateImmediately) {
  Model m = LinearModel({5.0f, -5.0f});
  CoverageOptions opts = RawOptions();
  opts.top_k = 2;
  TopKNeuronCoverage metric(m, opts);
  metric.Update(m, m.Forward(Scalar(1.0f)));
  EXPECT_FLOAT_EQ(metric.Coverage(), 1.0f);
  Rng rng(2);
  NeuronId id;
  EXPECT_FALSE(metric.PickUncovered(rng, &id));
}

// ---- Merge / Clone -----------------------------------------------------------------------

// Covers each built-in metric's Merge: commutativity and idempotence.
class MergeSemanticsTest : public ::testing::TestWithParam<std::string> {
 protected:
  MergeSemanticsTest() : model_(LinearModel({1.0f, 2.0f, -1.0f})) {}

  std::unique_ptr<CoverageMetric> Fresh() {
    CoverageOptions opts = RawOptions();
    opts.kmc_sections = 3;
    opts.top_k = 1;
    auto metric = MakeCoverageMetric(GetParam(), model_, opts);
    metric->ProfileSeed(model_, model_.Forward(Scalar(-1.0f)));
    metric->ProfileSeed(model_, model_.Forward(Scalar(1.0f)));
    return metric;
  }

  Model model_;
};

TEST_P(MergeSemanticsTest, MergeIsCommutativeAndIdempotent) {
  auto a = Fresh();
  auto b = Fresh();
  a->Update(model_, model_.Forward(Scalar(0.9f)));
  b->Update(model_, model_.Forward(Scalar(-0.7f)));

  auto ab = a->Clone();
  ab->Merge(*b);
  auto ba = b->Clone();
  ba->Merge(*a);
  EXPECT_EQ(ab->covered_items(), ba->covered_items());
  EXPECT_GE(ab->covered_items(), a->covered_items());
  EXPECT_GE(ab->covered_items(), b->covered_items());

  // Merging the same tracker again changes nothing.
  const int once = ab->covered_items();
  ab->Merge(*b);
  ab->Merge(*ab->Clone());
  EXPECT_EQ(ab->covered_items(), once);

  // Merging a clone of an empty tracker changes nothing either.
  ab->Merge(*Fresh());
  EXPECT_EQ(ab->covered_items(), once);
}

TEST_P(MergeSemanticsTest, CloneIsIndependentOfTheOriginal) {
  auto a = Fresh();
  auto clone = a->Clone();
  a->Update(model_, model_.Forward(Scalar(0.9f)));
  EXPECT_GT(a->covered_items(), 0);
  EXPECT_EQ(clone->covered_items(), 0);
}

// Serializing a metric captures its full state: two trackers are
// state-identical iff their blobs are byte-identical.
std::string StateBlob(const CoverageMetric& metric) {
  std::ostringstream out;
  BinaryWriter writer(out);
  metric.Serialize(writer);
  return out.str();
}

TEST_P(MergeSemanticsTest, MergeIsAssociative) {
  auto a = Fresh();
  auto b = Fresh();
  auto c = Fresh();
  a->Update(model_, model_.Forward(Scalar(0.9f)));
  b->Update(model_, model_.Forward(Scalar(-0.7f)));
  c->Update(model_, model_.Forward(Scalar(0.3f)));

  // (a ⊕ b) ⊕ c — full state compared, not just the covered count.
  auto left = a->Clone();
  left->Merge(*b);
  left->Merge(*c);
  // a ⊕ (b ⊕ c)
  auto right_inner = b->Clone();
  right_inner->Merge(*c);
  auto right = a->Clone();
  right->Merge(*right_inner);
  EXPECT_EQ(StateBlob(*left), StateBlob(*right));
}

TEST_P(MergeSemanticsTest, MergedClonesEqualSerialUpdates) {
  // The parallel-worker execution model: each task updates a Clone() of the
  // session tracker, and the clones are merged back in schedule order. The
  // result must be state-identical to one tracker seeing every trace
  // serially, for ANY partition of the traces.
  const std::vector<float> stimuli = {0.9f, -0.7f, 0.3f, -0.2f, 0.55f, 0.05f};
  auto serial = Fresh();
  for (const float v : stimuli) {
    serial->Update(model_, model_.Forward(Scalar(v)));
  }
  for (const size_t split : {size_t{1}, size_t{3}, size_t{5}}) {
    auto base = Fresh();
    auto worker_a = base->Clone();
    auto worker_b = base->Clone();
    for (size_t i = 0; i < stimuli.size(); ++i) {
      CoverageMetric& worker = i < split ? *worker_a : *worker_b;
      worker.Update(model_, model_.Forward(Scalar(stimuli[i])));
    }
    base->Merge(*worker_a);
    base->Merge(*worker_b);
    EXPECT_EQ(StateBlob(*base), StateBlob(*serial)) << "split at " << split;
    // Merge order must not matter either.
    auto swapped = Fresh();
    swapped->Merge(*worker_b);
    swapped->Merge(*worker_a);
    EXPECT_EQ(StateBlob(*swapped), StateBlob(*serial)) << "split at " << split;
  }
}

// ---- Serialize / Deserialize -------------------------------------------------------------

TEST_P(MergeSemanticsTest, SerializeDeserializeRoundTripsFullState) {
  auto metric = Fresh();
  metric->Update(model_, model_.Forward(Scalar(0.9f)));
  metric->Update(model_, model_.Forward(Scalar(-0.4f)));
  const std::string blob = StateBlob(*metric);

  auto restored = Fresh();
  std::istringstream in(blob);
  BinaryReader reader(in);
  restored->Deserialize(reader);
  EXPECT_EQ(restored->covered_items(), metric->covered_items());
  EXPECT_FLOAT_EQ(restored->Coverage(), metric->Coverage());
  EXPECT_EQ(StateBlob(*restored), blob);

  // The restored tracker keeps working: it accepts updates and merges.
  restored->Update(model_, model_.Forward(Scalar(0.1f)));
  metric->Update(model_, model_.Forward(Scalar(0.1f)));
  EXPECT_EQ(StateBlob(*restored), StateBlob(*metric));
}

TEST_P(MergeSemanticsTest, DeserializeRejectsMismatchedSnapshots) {
  auto metric = Fresh();
  metric->Update(model_, model_.Forward(Scalar(0.9f)));
  const std::string blob = StateBlob(*metric);

  // A tracker over a different model (one more neuron) must reject the blob.
  Model bigger = LinearModel({1.0f, 2.0f, -1.0f, 0.5f});
  CoverageOptions opts = RawOptions();
  opts.kmc_sections = 3;
  opts.top_k = 1;
  auto other = MakeCoverageMetric(GetParam(), bigger, opts);
  std::istringstream in(blob);
  BinaryReader reader(in);
  EXPECT_THROW(other->Deserialize(reader), std::runtime_error);

  // Truncated streams are detected, not silently accepted.
  auto truncated_target = Fresh();
  std::istringstream short_in(blob.substr(0, blob.size() / 2));
  BinaryReader short_reader(short_in);
  EXPECT_THROW(truncated_target->Deserialize(short_reader), std::runtime_error);
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, MergeSemanticsTest,
                         ::testing::Values("neuron", "kmultisection", "topk"));

TEST(MergeSemanticsTest, TypeMismatchThrows) {
  const Model m = LinearModel({1.0f, 2.0f});
  const CoverageOptions opts = RawOptions();
  NeuronCoverageTracker neuron(m, opts);
  TopKNeuronCoverage topk(m, opts);
  KMultisectionCoverage kmc(m, opts);
  EXPECT_THROW(neuron.Merge(topk), std::invalid_argument);
  EXPECT_THROW(topk.Merge(kmc), std::invalid_argument);
  EXPECT_THROW(kmc.Merge(neuron), std::invalid_argument);
}

TEST(MergeSemanticsTest, DifferentModelShapesThrow) {
  const Model a = LinearModel({1.0f, 2.0f});
  const Model b = LinearModel({1.0f, 2.0f, 3.0f});
  const CoverageOptions opts = RawOptions();
  NeuronCoverageTracker ta(a, opts);
  NeuronCoverageTracker tb(b, opts);
  EXPECT_THROW(ta.Merge(tb), std::invalid_argument);
}

}  // namespace
}  // namespace dx

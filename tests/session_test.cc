// Session engine tests: parallel worker determinism (workers=4 must equal
// workers=1 exactly for a fixed seed), metric/objective/scheduler plug-in
// wiring, and the DeepXplore facade over the session.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/baselines/adversarial.h"
#include "src/baselines/random_testing.h"
#include "src/constraints/constraint.h"
#include "src/core/deepxplore.h"
#include "src/core/session.h"
#include "src/coverage/kmultisection_coverage.h"
#include "src/data/dataset.h"
#include "src/models/trainer.h"
#include "src/nn/dense.h"
#include "src/nn/model.h"
#include "src/nn/softmax_layer.h"
#include "src/tensor/ops.h"
#include "src/util/rng.h"

namespace dx {
namespace {

// Same toy setup as core_test: 2-D, 2-class task with a margin band removed.
Dataset MakeToyTask(int n, uint64_t seed) {
  Rng rng(seed);
  Dataset ds{"toy", {2}, 2, {}, {}};
  while (ds.size() < n) {
    Tensor x({2});
    x[0] = rng.NextFloat();
    x[1] = rng.NextFloat();
    if (std::abs(x[0] - x[1]) < 0.08f) {
      continue;
    }
    const float label = x[0] > x[1] ? 0.0f : 1.0f;  // Before the move.
    ds.Add(std::move(x), label);
  }
  return ds;
}

Model MakeToyClassifier(const std::string& name, int hidden, uint64_t seed) {
  Rng rng(seed);
  Model m(name, {2});
  m.Emplace<Dense>(2, hidden, Activation::kRelu).InitParams(rng);
  m.Emplace<Dense>(hidden, hidden, Activation::kRelu).InitParams(rng);
  m.Emplace<Dense>(hidden, 2).InitParams(rng);
  m.Emplace<SoftmaxLayer>();
  return m;
}

class SessionToyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    train_ = new Dataset(MakeToyTask(600, 1));
    models_ = new std::vector<Model>();
    models_->push_back(MakeToyClassifier("toy_a", 16, 11));
    models_->push_back(MakeToyClassifier("toy_b", 24, 22));
    models_->push_back(MakeToyClassifier("toy_c", 12, 33));
    for (Model& m : *models_) {
      TrainConfig cfg;
      cfg.epochs = 8;
      cfg.learning_rate = 5e-3f;
      cfg.seed = 7;
      Trainer::Fit(&m, *train_, cfg);
      ASSERT_GT(Trainer::Accuracy(m, *train_), 0.95f);
    }
    // Seeds near (but not on) the shared decision boundary.
    seeds_ = new std::vector<Tensor>();
    Rng rng(10);
    while (seeds_->size() < 40) {
      Tensor x({2});
      x[0] = rng.NextFloat();
      x[1] = rng.NextFloat();
      const float margin = std::abs(x[0] - x[1]);
      if (margin > 0.1f && margin < 0.3f) {
        seeds_->push_back(std::move(x));
      }
    }
  }
  static void TearDownTestSuite() {
    delete seeds_;
    delete models_;
    delete train_;
    seeds_ = nullptr;
    models_ = nullptr;
    train_ = nullptr;
  }

  static std::vector<Model*> ModelPtrs() {
    std::vector<Model*> ptrs;
    for (Model& m : *models_) {
      ptrs.push_back(&m);
    }
    return ptrs;
  }

  static SessionConfig ToyConfig() {
    SessionConfig config;
    config.engine.lambda1 = 2.5f;
    config.engine.step = 0.05f;
    config.engine.max_iterations_per_seed = 150;
    config.engine.rng_seed = 9;
    return config;
  }

  static Dataset* train_;
  static std::vector<Model>* models_;
  static std::vector<Tensor>* seeds_;
  UnconstrainedImage constraint_;
};

Dataset* SessionToyTest::train_ = nullptr;
std::vector<Model>* SessionToyTest::models_ = nullptr;
std::vector<Tensor>* SessionToyTest::seeds_ = nullptr;

RunStats RunWithWorkers(const std::vector<Model*>& models, const Constraint* constraint,
                        SessionConfig config, const std::vector<Tensor>& seeds,
                        int workers, const RunOptions& options = RunOptions{}) {
  config.workers = workers;
  Session session(models, constraint, config);
  return session.Run(seeds, options);
}

TEST_F(SessionToyTest, WorkerCountDoesNotChangeResults) {
  const RunStats serial =
      RunWithWorkers(ModelPtrs(), &constraint_, ToyConfig(), *seeds_, 1);
  ASSERT_GT(serial.tests.size(), 0u);
  for (const int workers : {2, 4}) {
    const RunStats parallel =
        RunWithWorkers(ModelPtrs(), &constraint_, ToyConfig(), *seeds_, workers);
    ASSERT_EQ(parallel.tests.size(), serial.tests.size()) << "workers=" << workers;
    EXPECT_EQ(parallel.seeds_tried, serial.seeds_tried);
    EXPECT_EQ(parallel.seeds_skipped, serial.seeds_skipped);
    EXPECT_EQ(parallel.total_iterations, serial.total_iterations);
    EXPECT_FLOAT_EQ(parallel.mean_coverage, serial.mean_coverage);
    for (size_t i = 0; i < serial.tests.size(); ++i) {
      EXPECT_FLOAT_EQ(L1Distance(parallel.tests[i].input, serial.tests[i].input), 0.0f);
      EXPECT_EQ(parallel.tests[i].seed_index, serial.tests[i].seed_index);
      EXPECT_EQ(parallel.tests[i].deviating_model, serial.tests[i].deviating_model);
      EXPECT_EQ(parallel.tests[i].iterations, serial.tests[i].iterations);
    }
  }
}

TEST_F(SessionToyTest, MaxTestsBudgetIsExactForAnyWorkerCount) {
  RunOptions options;
  options.max_tests = 3;
  const RunStats serial =
      RunWithWorkers(ModelPtrs(), &constraint_, ToyConfig(), *seeds_, 1, options);
  const RunStats parallel =
      RunWithWorkers(ModelPtrs(), &constraint_, ToyConfig(), *seeds_, 4, options);
  EXPECT_EQ(static_cast<int>(serial.tests.size()), 3);
  EXPECT_EQ(static_cast<int>(parallel.tests.size()), 3);
  EXPECT_EQ(parallel.seeds_tried, serial.seeds_tried);
}

TEST_F(SessionToyTest, RepeatedParallelRunsAreIdentical) {
  const RunStats a = RunWithWorkers(ModelPtrs(), &constraint_, ToyConfig(), *seeds_, 4);
  const RunStats b = RunWithWorkers(ModelPtrs(), &constraint_, ToyConfig(), *seeds_, 4);
  ASSERT_EQ(a.tests.size(), b.tests.size());
  for (size_t i = 0; i < a.tests.size(); ++i) {
    EXPECT_FLOAT_EQ(L1Distance(a.tests[i].input, b.tests[i].input), 0.0f);
  }
}

TEST_F(SessionToyTest, AllMetricsRunEndToEnd) {
  for (const std::string& metric : {"neuron", "kmultisection", "topk"}) {
    SessionConfig config = ToyConfig();
    config.metric = metric;
    Session session(ModelPtrs(), &constraint_, config);
    const RunStats stats = session.Run(*seeds_, RunOptions{});
    EXPECT_GT(stats.tests.size(), 0u) << metric;
    EXPECT_GT(session.MeanCoverage(), 0.0f) << metric;
    EXPECT_EQ(session.metric(0).name(), metric);
  }
}

TEST_F(SessionToyTest, KMultisectionProfilesFromTheSeedPool) {
  SessionConfig config = ToyConfig();
  config.metric = "kmultisection";
  Session session(ModelPtrs(), &constraint_, config);
  session.Run(*seeds_, RunOptions{});
  const auto& metric = dynamic_cast<const KMultisectionCoverage&>(session.metric(0));
  EXPECT_TRUE(metric.profiled());
}

TEST_F(SessionToyTest, BaselineObjectivesRunThroughTheEngineLoop) {
  for (const std::string& objective : {"differential", "fgsm", "random"}) {
    SessionConfig config = ToyConfig();
    config.objective = objective;
    Session session(ModelPtrs(), &constraint_, config);
    EXPECT_EQ(session.objective().name(), objective);
    const RunStats stats = session.Run(*seeds_, RunOptions{});
    EXPECT_EQ(stats.seeds_tried, 40);
    for (const GeneratedTest& t : stats.tests) {
      EXPECT_TRUE(session.IsDifference(t.input)) << objective;
    }
  }
}

TEST_F(SessionToyTest, CoverageGainSchedulerRecyclesProductiveSeeds) {
  SessionConfig config = ToyConfig();
  config.scheduler = "coverage-gain";
  Session session(ModelPtrs(), &constraint_, config);
  RunOptions options;
  options.max_seed_passes = 2;
  const RunStats stats = session.Run(*seeds_, options);
  EXPECT_EQ(stats.seeds_tried, 80);
  EXPECT_GT(stats.tests.size(), 0u);
  // Determinism holds for the prioritized scheduler too.
  Session again(ModelPtrs(), &constraint_, config);
  const RunStats repeat = again.Run(*seeds_, options);
  EXPECT_EQ(repeat.tests.size(), stats.tests.size());
}

TEST(ObjectiveTraceTest, ObjectivesDeclareTheTracesTheyNeed) {
  ObjectiveContext ctx;
  ctx.target_model = 1;
  const FgsmObjective fgsm;
  EXPECT_TRUE(fgsm.NeedsTrace(ctx, 1));
  EXPECT_FALSE(fgsm.NeedsTrace(ctx, 0));
  const RandomPerturbationObjective random;
  EXPECT_FALSE(random.NeedsTrace(ctx, 0));
  const auto joint = MakeJointObjective();
  EXPECT_TRUE(joint->NeedsTrace(ctx, 0));
  EXPECT_TRUE(joint->NeedsTrace(ctx, 1));
}

TEST_F(SessionToyTest, CustomObjectiveInjection) {
  SessionConfig config = ToyConfig();
  Session session(ModelPtrs(), &constraint_, config);
  session.SetObjective(std::make_unique<FgsmObjective>());
  EXPECT_EQ(session.objective().name(), "fgsm");
  EXPECT_THROW(session.SetObjective(nullptr), std::invalid_argument);
}

TEST_F(SessionToyTest, InvalidPluginNamesThrow) {
  auto ptrs = ModelPtrs();
  SessionConfig config = ToyConfig();
  config.metric = "no-such-metric";
  EXPECT_THROW(Session(ptrs, &constraint_, config), std::invalid_argument);
  config = ToyConfig();
  config.objective = "no-such-objective";
  EXPECT_THROW(Session(ptrs, &constraint_, config), std::invalid_argument);
  config = ToyConfig();
  config.scheduler = "no-such-scheduler";
  EXPECT_THROW(Session(ptrs, &constraint_, config), std::invalid_argument);
  // Legacy serial mode is incompatible with parallel workers.
  config = ToyConfig();
  config.sync_interval = 0;
  config.workers = 4;
  EXPECT_THROW(Session(ptrs, &constraint_, config), std::invalid_argument);
}

TEST_F(SessionToyTest, FacadeExposesItsSession) {
  DeepXploreConfig config;
  config.lambda1 = 2.5f;
  config.step = 0.05f;
  config.rng_seed = 9;
  DeepXplore engine(ModelPtrs(), &constraint_, config);
  EXPECT_EQ(engine.session().config().metric, "neuron");
  EXPECT_EQ(engine.session().config().objective, "joint");
  EXPECT_EQ(engine.num_models(), 3);
  // The facade's tracker() downcast targets the session's "neuron" metric.
  EXPECT_EQ(engine.tracker(0).total_neurons(), engine.session().metric(0).total_items());
}

}  // namespace
}  // namespace dx

// Numerical gradient check for Model::BackwardInputBatch on conv /
// batch-norm / residual stacks: the batched reverse pass that drives the
// executor's objective gradients must match central differences per sample,
// filling the gap left by tests/zoo_gradient_test.cc (which only covers the
// scalar BackwardInput path). Each stack forwards a whole batch once and
// differentiates a random linear functional of the output; per-sample
// numerical probes then check sampled input coordinates.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "src/nn/batchnorm.h"
#include "src/nn/conv2d.h"
#include "src/nn/dense.h"
#include "src/nn/flatten.h"
#include "src/nn/model.h"
#include "src/nn/pool2d.h"
#include "src/nn/residual.h"
#include "src/tensor/ops.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace dx {
namespace {

constexpr int kBatch = 5;
constexpr int kChecksPerSample = 16;

Model MakeConvStack(uint64_t seed) {
  Rng rng(seed);
  Model m("conv_stack", {1, 10, 10});
  m.Emplace<Conv2D>(1, 4, 3, 3, 1, 1, Activation::kRelu).InitParams(rng);
  m.Emplace<Pool2D>(PoolMode::kMax, 2);
  m.Emplace<Conv2D>(4, 6, 3, 3, 1, 0, Activation::kTanh).InitParams(rng);
  m.Emplace<Flatten>();
  m.Emplace<Dense>(6 * 3 * 3, 4, Activation::kTanh).InitParams(rng);
  return m;
}

Model MakeBatchNormStack(uint64_t seed) {
  Rng rng(seed);
  Model m("batchnorm_stack", {2, 8, 8});
  m.Emplace<Conv2D>(2, 4, 3, 3, 1, 1, Activation::kNone).InitParams(rng);
  auto& bn = m.Emplace<BatchNorm>(4);
  bn.SetStatistics({0.1f, -0.2f, 0.3f, 0.05f}, {1.0f, 0.5f, 2.0f, 0.25f});
  m.Emplace<Conv2D>(4, 3, 3, 3, 2, 1, Activation::kTanh).InitParams(rng);
  m.Emplace<Flatten>();
  m.Emplace<Dense>(3 * 4 * 4, 3, Activation::kSigmoid).InitParams(rng);
  return m;
}

Model MakeResidualStack(uint64_t seed) {
  Rng rng(seed);
  Model m("residual_stack", {2, 8, 8});
  m.Emplace<Conv2D>(2, 4, 3, 3, 1, 1, Activation::kRelu).InitParams(rng);
  m.Emplace<ResidualBlock>(4, 4).InitParams(rng);
  m.Emplace<ResidualBlock>(4, 8, 2).InitParams(rng);
  m.Emplace<Flatten>();
  m.Emplace<Dense>(8 * 4 * 4, 4, Activation::kTanh).InitParams(rng);
  return m;
}

// Checks d(seed_b . output)/d(input_b) from BackwardInputBatch against
// central differences on a random subset of input coordinates per sample.
void CheckBatchedInputGradient(const Model& model, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> inputs;
  std::vector<Tensor> grad_seeds;
  std::vector<const Tensor*> input_ptrs;
  std::vector<const Tensor*> seed_ptrs;
  for (int b = 0; b < kBatch; ++b) {
    // Positive-leaning inputs keep ReLU pre-activations mostly off kinks.
    inputs.push_back(Tensor::RandUniform(model.input_shape(), rng, 0.05f, 0.95f));
    grad_seeds.push_back(Tensor::RandUniform(model.output_shape(), rng, -1.0f, 1.0f));
  }
  for (int b = 0; b < kBatch; ++b) {
    input_ptrs.push_back(&inputs[static_cast<size_t>(b)]);
    seed_ptrs.push_back(&grad_seeds[static_cast<size_t>(b)]);
  }

  const BatchTrace trace = model.ForwardBatch(StackSamples(input_ptrs));
  const Tensor analytic = model.BackwardInputBatch(trace, model.num_layers() - 1,
                                                   StackSamples(seed_ptrs));

  const float eps = 5e-3f;
  for (int b = 0; b < kBatch; ++b) {
    const Tensor& grad_seed = grad_seeds[static_cast<size_t>(b)];
    const auto objective = [&](const Tensor& x) {
      const Tensor out = model.Predict(x);
      double dot = 0.0;
      for (int64_t i = 0; i < out.numel(); ++i) {
        dot += static_cast<double>(out[i]) * static_cast<double>(grad_seed[i]);
      }
      return dot;
    };
    Tensor x = inputs[static_cast<size_t>(b)];
    const Tensor analytic_b = SliceSample(analytic, b);
    int kink_skips = 0;
    for (int c = 0; c < kChecksPerSample; ++c) {
      const int64_t i = rng.UniformInt(0, x.numel() - 1);
      const float orig = x[i];
      x[i] = orig + eps;
      const double plus = objective(x);
      x[i] = orig - eps;
      const double minus = objective(x);
      x[i] = orig;
      const float numeric = static_cast<float>((plus - minus) / (2.0 * eps));
      const float denom = std::max({1.0f, std::abs(numeric), std::abs(analytic_b[i])});
      const float rel_err = std::abs(numeric - analytic_b[i]) / denom;
      if (rel_err > 3e-2f && ++kink_skips <= 2) {
        continue;  // Tolerate at most two ReLU/maxpool kink crossings.
      }
      EXPECT_LT(rel_err, 3e-2f)
          << model.name() << " sample " << b << " coordinate " << i;
    }
  }
}

TEST(BatchGradientTest, ConvStack) { CheckBatchedInputGradient(MakeConvStack(31), 131); }

TEST(BatchGradientTest, BatchNormStack) {
  CheckBatchedInputGradient(MakeBatchNormStack(32), 132);
}

TEST(BatchGradientTest, ResidualStack) {
  CheckBatchedInputGradient(MakeResidualStack(33), 133);
}

// The batched reverse pass must also agree with the scalar reverse pass bit
// for bit (the numerical check above is tolerance-bounded; this one is not).
TEST(BatchGradientTest, BatchedBackwardMatchesScalarBitwise) {
  for (const uint64_t seed : {41u, 42u, 43u}) {
    const Model model = seed == 41u   ? MakeConvStack(seed)
                        : seed == 42u ? MakeBatchNormStack(seed)
                                      : MakeResidualStack(seed);
    Rng rng(seed + 100);
    std::vector<Tensor> inputs;
    std::vector<Tensor> grad_seeds;
    std::vector<const Tensor*> input_ptrs;
    std::vector<const Tensor*> seed_ptrs;
    for (int b = 0; b < kBatch; ++b) {
      inputs.push_back(Tensor::RandUniform(model.input_shape(), rng));
      grad_seeds.push_back(Tensor::RandUniform(model.output_shape(), rng, -1.0f, 1.0f));
    }
    for (int b = 0; b < kBatch; ++b) {
      input_ptrs.push_back(&inputs[static_cast<size_t>(b)]);
      seed_ptrs.push_back(&grad_seeds[static_cast<size_t>(b)]);
    }
    const BatchTrace trace = model.ForwardBatch(StackSamples(input_ptrs));
    const Tensor batched = model.BackwardInputBatch(trace, model.num_layers() - 1,
                                                    StackSamples(seed_ptrs));
    for (int b = 0; b < kBatch; ++b) {
      const ForwardTrace scalar = model.Forward(inputs[static_cast<size_t>(b)]);
      const Tensor scalar_grad = model.BackwardInput(scalar, model.num_layers() - 1,
                                                     grad_seeds[static_cast<size_t>(b)]);
      EXPECT_EQ(SliceSample(batched, b).values(), scalar_grad.values())
          << model.name() << " sample " << b;
    }
  }
}

}  // namespace
}  // namespace dx

// Reproducibility guarantees: everything in the pipeline is a pure function
// of its seeds — datasets, model initialization, training, and the engine.
// Plus tests for the ablation knobs (gradient normalization, occlusion
// placement).
#include <gtest/gtest.h>

#include "src/constraints/constraint.h"
#include "src/constraints/image_constraints.h"
#include "src/core/deepxplore.h"
#include "src/models/trainer.h"
#include "src/models/zoo.h"
#include "src/nn/dense.h"
#include "src/nn/softmax_layer.h"
#include "src/tensor/ops.h"
#include "src/util/rng.h"

namespace dx {
namespace {

Model TinyClassifier(uint64_t seed) {
  Rng rng(seed);
  Model m("tiny" + std::to_string(seed), {4});
  m.Emplace<Dense>(4, 8, Activation::kTanh).InitParams(rng);
  m.Emplace<Dense>(8, 2).InitParams(rng);
  m.Emplace<SoftmaxLayer>();
  return m;
}

TEST(DeterminismTest, ModelBuildIsBitReproducible) {
  Model a = ModelZoo::Build("MNI_C1", 77);
  Model b = ModelZoo::Build("MNI_C1", 77);
  const auto pa = a.Params();
  const auto pb = b.Params();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i]->values(), pb[i]->values()) << "param " << i;
  }
}

TEST(DeterminismTest, SerializationIsStable) {
  Model a = ModelZoo::Build("PDF_C1", 5);
  EXPECT_EQ(a.Serialize(), Model::Deserialize(a.Serialize()).Serialize());
}

TEST(DeterminismTest, EngineRunsIdenticallyForSameSeed) {
  Model m1 = TinyClassifier(1);
  Model m2 = TinyClassifier(2);
  UnconstrainedImage constraint;

  Rng data_rng(3);
  std::vector<Tensor> seeds;
  for (int i = 0; i < 10; ++i) {
    seeds.push_back(Tensor::RandUniform({4}, data_rng));
  }

  const auto run_once = [&]() {
    DeepXploreConfig config;
    config.step = 0.05f;
    config.rng_seed = 99;
    DeepXplore engine({&m1, &m2}, &constraint, config);
    return engine.Run(seeds, RunOptions{});
  };
  const RunStats a = run_once();
  const RunStats b = run_once();
  ASSERT_EQ(a.tests.size(), b.tests.size());
  EXPECT_EQ(a.total_iterations, b.total_iterations);
  for (size_t i = 0; i < a.tests.size(); ++i) {
    EXPECT_FLOAT_EQ(L1Distance(a.tests[i].input, b.tests[i].input), 0.0f);
    EXPECT_EQ(a.tests[i].deviating_model, b.tests[i].deviating_model);
  }
}

TEST(DeterminismTest, DifferentEngineSeedsDiverge) {
  Model m1 = TinyClassifier(1);
  Model m2 = TinyClassifier(2);
  UnconstrainedImage constraint;
  DeepXploreConfig config;
  config.step = 0.05f;
  config.rng_seed = 1;
  DeepXplore engine_a({&m1, &m2}, &constraint, config);
  config.rng_seed = 2;
  DeepXplore engine_b({&m1, &m2}, &constraint, config);
  // Different rng seeds pick different target models / neurons over time;
  // just assert both engines are usable and independent (no shared state).
  Rng data_rng(4);
  const Tensor x = Tensor::RandUniform({4}, data_rng);
  engine_a.GenerateFromSeed(x, 0);
  engine_b.GenerateFromSeed(x, 0);
  SUCCEED();
}

// ---- Ablation knobs ------------------------------------------------------------------

TEST(AblationKnobsTest, RawGradientModeSkipsNormalization) {
  Model m1 = TinyClassifier(1);
  Model m2 = TinyClassifier(2);
  UnconstrainedImage constraint;
  DeepXploreConfig config;
  config.normalize_gradient = false;
  config.step = 0.05f;
  DeepXplore engine({&m1, &m2}, &constraint, config);
  Rng data_rng(5);
  const Tensor x = Tensor::RandUniform({4}, data_rng);
  // Must run without error; with raw (tiny) gradients the input barely moves.
  const auto result = engine.GenerateFromSeed(x, 0);
  (void)result;
  SUCCEED();
}

TEST(AblationKnobsTest, RandomOcclusionPlacementStaysRectangular) {
  OcclusionConstraint random(3, 3, OcclusionConstraint::Placement::kRandom);
  Rng rng(6);
  const Tensor grad({1, 8, 8}, 1.0f);
  for (int trial = 0; trial < 10; ++trial) {
    const Tensor dir = random.Apply(grad, Tensor({1, 8, 8}), rng);
    int nonzero = 0;
    for (int64_t i = 0; i < dir.numel(); ++i) {
      nonzero += dir[i] != 0.0f ? 1 : 0;
    }
    EXPECT_EQ(nonzero, 9);  // Exactly one 3x3 rectangle.
  }
}

TEST(AblationKnobsTest, RandomPlacementVariesPosition) {
  OcclusionConstraint random(2, 2, OcclusionConstraint::Placement::kRandom);
  Rng rng(7);
  const Tensor grad({1, 8, 8}, 1.0f);
  const Tensor a = random.Apply(grad, Tensor({1, 8, 8}), rng);
  Tensor b = a;
  // With 49 possible positions, 10 draws almost surely differ at least once.
  bool moved = false;
  for (int trial = 0; trial < 10 && !moved; ++trial) {
    b = random.Apply(grad, Tensor({1, 8, 8}), rng);
    moved = L1Distance(a, b) > 0.0f;
  }
  EXPECT_TRUE(moved);
}

}  // namespace
}  // namespace dx

// Allocation-regression test for the zero-allocation execution stack: after
// warm-up, the batched executor's gradient-ascent loop must perform ZERO
// per-iteration heap allocations. The global operator new replacements below
// count allocations while a scoped flag is set; the test measures two warm
// runs that differ only in their iteration budget and asserts the counts are
// EQUAL — any per-iteration allocation would make the longer run count more.
//
// The models in each pair are identical, so no difference-inducing input is
// ever found and every iteration takes the steady-state (no-find) path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "src/constraints/image_constraints.h"
#include "src/core/executor.h"
#include "src/core/objective.h"
#include "src/core/session.h"
#include "src/coverage/coverage_metric.h"
#include "src/nn/conv2d.h"
#include "src/nn/dense.h"
#include "src/nn/flatten.h"
#include "src/nn/model.h"
#include "src/nn/pool2d.h"
#include "src/nn/softmax_layer.h"
#include "src/util/rng.h"

// ---- Scoped allocation counting ----------------------------------------------------------

namespace {

std::atomic<bool> g_counting{false};
std::atomic<int64_t> g_allocs{0};

void* CountedAlloc(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* CountedAlignedAlloc(std::size_t size, std::size_t align) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size == 0 ? 1 : size) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return CountedAlloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return CountedAlloc(size);
  } catch (...) {
    return nullptr;
  }
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace dx {
namespace {

// Two bit-identical models: every seed keeps its consensus forever, so runs
// exhaust the full iteration budget on the steady-state path.
Model MakeModel() {
  Model m("twin", {1, 8, 8});
  Rng rng(4242);
  auto& conv = m.Emplace<Conv2D>(1, 3, 3, 3, 1, 0, Activation::kRelu);
  conv.InitParams(rng);
  m.Emplace<Pool2D>(PoolMode::kMax, 2);
  m.Emplace<Flatten>();
  auto& dense = m.Emplace<Dense>(3 * 3 * 3, 4, Activation::kNone);
  dense.InitParams(rng);
  m.Emplace<SoftmaxLayer>();
  return m;
}

std::vector<Tensor> MakeSeeds(const Model& model, int n) {
  Rng rng(99);
  std::vector<Tensor> seeds;
  for (int i = 0; i < n; ++i) {
    seeds.push_back(Tensor::RandUniform(model.input_shape(), rng));
  }
  return seeds;
}

struct TaskSetup {
  std::vector<Rng> rngs;
  std::vector<std::vector<std::unique_ptr<CoverageMetric>>> metrics;
  std::vector<Executor::SeedTask> tasks;
};

TaskSetup MakeSetup(const std::vector<Tensor>& seeds, const std::vector<Model*>& models,
                    const CoverageOptions& options) {
  TaskSetup setup;
  const int n = static_cast<int>(seeds.size());
  setup.rngs.reserve(static_cast<size_t>(n));
  setup.metrics.resize(static_cast<size_t>(n));
  for (int t = 0; t < n; ++t) {
    setup.rngs.emplace_back(1000 + static_cast<uint64_t>(t));
    for (const Model* m : models) {
      setup.metrics[static_cast<size_t>(t)].push_back(
          MakeCoverageMetric("neuron", *m, options));
    }
  }
  for (int t = 0; t < n; ++t) {
    Executor::SeedTask task;
    task.seed = &seeds[static_cast<size_t>(t)];
    task.seed_index = t;
    task.ordinal = static_cast<uint64_t>(t);
    task.rng = &setup.rngs[static_cast<size_t>(t)];
    task.metrics = &setup.metrics[static_cast<size_t>(t)];
    setup.tasks.push_back(task);
  }
  return setup;
}

TEST(AllocTest, ExecutorSteadyStateIsAllocationFree) {
  Model a = MakeModel();
  Model b = MakeModel();
  std::vector<Model*> models = {&a, &b};
  const LightingConstraint constraint;
  EngineConfig engine;
  engine.step = 10.0f / 255.0f;
  engine.lambda2 = 0.1f;  // Coverage objective ON: PickUncovered runs hot.
  const Executor executor(models, &constraint, /*regression=*/false, &engine);
  const auto objective = MakeObjective("joint");
  const std::vector<Tensor> seeds = MakeSeeds(a, 4);

  const auto measure = [&](int iterations) {
    engine.max_iterations_per_seed = iterations;
    TaskSetup setup = MakeSetup(seeds, models, engine.coverage);
    g_allocs.store(0);
    g_counting.store(true);
    auto results = executor.Run(setup.tasks, *objective);
    g_counting.store(false);
    for (const auto& r : results) {
      EXPECT_FALSE(r.has_value()) << "identical models must never disagree";
    }
    return g_allocs.load();
  };

  // Warm-up: compiles plans, fills the state pool and workspace arenas.
  engine.max_iterations_per_seed = 2;
  {
    TaskSetup warm = MakeSetup(seeds, models, engine.coverage);
    (void)executor.Run(warm.tasks, *objective);
  }

  const int64_t short_run = measure(3);
  const int64_t long_run = measure(9);
  // Identical counts <=> zero allocations per additional iteration. (The
  // fixed per-Run cost — the results vector — is present in both.)
  EXPECT_EQ(short_run, long_run)
      << "per-iteration allocations: " << (long_run - short_run) << " over 6 iterations";
}

TEST(AllocTest, SessionGenerateFromSeedSteadyStateIsAllocationFree) {
  Model a = MakeModel();
  Model b = MakeModel();
  std::vector<Model*> models = {&a, &b};
  const LightingConstraint constraint;

  const auto measure = [&](int iterations) {
    SessionConfig config;
    config.engine.step = 10.0f / 255.0f;
    config.engine.max_iterations_per_seed = iterations;
    Session session(models, &constraint, config);
    const std::vector<Tensor> seeds = MakeSeeds(a, 1);
    // Warm-up pass for this session's executor state.
    (void)session.GenerateFromSeed(seeds[0], 0);
    g_allocs.store(0);
    g_counting.store(true);
    auto result = session.GenerateFromSeed(seeds[0], 0);
    g_counting.store(false);
    EXPECT_FALSE(result.has_value());
    return g_allocs.load();
  };

  const int64_t short_run = measure(3);
  const int64_t long_run = measure(9);
  EXPECT_EQ(short_run, long_run)
      << "per-iteration allocations: " << (long_run - short_run) << " over 6 iterations";
}

}  // namespace
}  // namespace dx

// Trainer + zoo tests: calibration, learning on small datasets, and the
// registry-backed zoo's architecture metadata (the paper's 15 models plus
// every registered out-of-paper domain).
#include <gtest/gtest.h>

#include <map>
#include <utility>

#include "src/core/domain.h"
#include "src/data/drebin.h"
#include "src/data/pdf.h"
#include "src/data/road.h"
#include "src/data/synthetic_digits.h"
#include "src/models/trainer.h"
#include "src/models/zoo.h"
#include "src/nn/batchnorm.h"
#include "src/nn/dense.h"
#include "src/nn/softmax_layer.h"
#include "src/util/rng.h"

namespace dx {
namespace {

// ---- Registry ----------------------------------------------------------------------------

TEST(ZooRegistryTest, ThreeModelsPerBuiltinDomain) {
  // Every built-in domain ships the paper-style trio; a registered domain in
  // general only promises >= 2 (the differential-testing minimum).
  EXPECT_GE(ZooModels().size(), 21u);
  for (const std::string& key : DomainKeys()) {
    EXPECT_GE(DomainModelNames(key).size(), 2u) << key;
  }
  for (const char* key :
       {"mnist", "imagenet", "driving", "pdf", "drebin", "speech", "tabular"}) {
    EXPECT_EQ(DomainModelNames(key).size(), 3u) << key;
  }
  // The deprecated enum overloads keep answering for the paper domains.
  for (const Domain d : AllDomains()) {
    EXPECT_EQ(DomainModelNames(d), DomainModelNames(DomainKey(d)));
  }
}

TEST(ZooRegistryTest, FindModelResolvesAndThrows) {
  EXPECT_EQ(FindModel("MNI_C1").arch, "LeNet-1");
  EXPECT_EQ(FindModel("MNI_C1").domain, "mnist");
  EXPECT_EQ(FindModel("IMG_C3").arch, "MiniResNet");
  EXPECT_EQ(FindModel("SPC_C1").domain, "speech");
  EXPECT_EQ(FindModel("TAB_C3").domain, "tabular");
  EXPECT_THROW(FindModel("NOPE"), std::out_of_range);
}

TEST(ZooRegistryTest, DomainNames) {
  EXPECT_EQ(DomainName(Domain::kMnist), "MNIST");
  EXPECT_EQ(DomainName(Domain::kPdf), "VirusTotal");
  EXPECT_EQ(DomainName("speech"), "Speech");
  EXPECT_EQ(DomainKey(Domain::kPdf), "pdf");
  EXPECT_EQ(AllDomains().size(), static_cast<size_t>(kNumDomains));
  // The registry holds the paper domains plus the out-of-paper ones.
  EXPECT_GE(DomainKeys().size(), AllDomains().size() + 2);
}

// ---- Builders ----------------------------------------------------------------------------

TEST(ZooBuildTest, AllModelsBuildWithCorrectInterfaces) {
  // Paper-pinned shapes for the five Table-1 domains.
  const std::map<std::string, std::pair<Shape, Shape>> paper_shapes = {
      {"mnist", {{1, 28, 28}, {10}}},
      {"imagenet", {{3, 32, 32}, {10}}},
      {"driving", {{3, 32, 64}, {1}}},
      {"pdf", {{kPdfFeatureCount}, {2}}},
      {"drebin", {{kDrebinFeatureCount}, {2}}},
  };
  for (const ModelInfo& info : ZooModels()) {
    const Model m = ModelZoo::Build(info.name, 1);
    EXPECT_EQ(m.name(), info.name);
    EXPECT_GT(m.TotalNeurons(), 0) << info.name;
    // Every model must accept its domain's dataset samples.
    const Dataset probe = GetDomain(info.domain).make_dataset(1, 1);
    EXPECT_EQ(m.input_shape(), probe.input_shape) << info.name;
    const auto pinned = paper_shapes.find(info.domain);
    if (pinned != paper_shapes.end()) {
      EXPECT_EQ(m.input_shape(), pinned->second.first) << info.name;
      EXPECT_EQ(m.output_shape(), pinned->second.second) << info.name;
    }
  }
}

TEST(ZooBuildTest, VariantsWithinDomainDiffer) {
  // The models of one domain must be architecturally distinct, pairwise.
  for (const std::string& key : DomainKeys()) {
    const auto names = DomainModelNames(key);
    ASSERT_GE(names.size(), 2u) << key;
    for (size_t i = 1; i < names.size(); ++i) {
      const Model a = ModelZoo::Build(names[i - 1], 1);
      const Model b = ModelZoo::Build(names[i], 1);
      EXPECT_TRUE(a.NumParams() != b.NumParams() || a.num_layers() != b.num_layers())
          << key << ": " << names[i - 1] << " vs " << names[i];
    }
  }
}

TEST(ZooBuildTest, DaveOrigHasNormLayerNorminitDoesNot) {
  Model orig = ModelZoo::Build("DRV_C1", 1);
  Model norminit = ModelZoo::Build("DRV_C2", 1);
  Model dropout = ModelZoo::Build("DRV_C3", 1);
  EXPECT_EQ(orig.layer(0).Kind(), "batchnorm");
  EXPECT_NE(norminit.layer(0).Kind(), "batchnorm");
  bool has_dropout = false;
  for (int l = 0; l < dropout.num_layers(); ++l) {
    has_dropout = has_dropout || dropout.layer(l).Kind() == "dropout";
  }
  EXPECT_TRUE(has_dropout);
  // Dropout variant has fewer conv layers than orig.
  int convs_orig = 0;
  int convs_drop = 0;
  for (int l = 0; l < orig.num_layers(); ++l) {
    convs_orig += orig.layer(l).Kind() == "conv2d" ? 1 : 0;
  }
  for (int l = 0; l < dropout.num_layers(); ++l) {
    convs_drop += dropout.layer(l).Kind() == "conv2d" ? 1 : 0;
  }
  EXPECT_LT(convs_drop, convs_orig);
}

TEST(ZooBuildTest, CustomLenet1FilterCounts) {
  Model m = ModelZoo::BuildCustomLenet1(5, 13, 3);
  EXPECT_EQ(m.layer(0).NumNeurons(), 5);
  EXPECT_EQ(m.layer(2).NumNeurons(), 13);
  EXPECT_EQ(m.Predict(Tensor({1, 28, 28})).numel(), 10);
}

// ---- Trainer -----------------------------------------------------------------------------

TEST(TrainerTest, CalibrationSetsBatchNormStats) {
  Rng rng(1);
  Model m("bn", {2});
  m.Emplace<BatchNorm>(2);
  m.Emplace<Dense>(2, 2).InitParams(rng);
  m.Emplace<SoftmaxLayer>();

  Dataset ds{"d", {2}, 2, {}, {}};
  Rng data_rng(2);
  for (int i = 0; i < 100; ++i) {
    Tensor x({2});
    x[0] = static_cast<float>(data_rng.Normal(3.0, 2.0));
    x[1] = static_cast<float>(data_rng.Normal(-1.0, 0.5));
    ds.Add(std::move(x), static_cast<float>(i % 2));
  }
  Trainer::CalibrateNormLayers(&m, ds);
  auto* bn = dynamic_cast<BatchNorm*>(&m.layer(0));
  ASSERT_NE(bn, nullptr);
  EXPECT_TRUE(bn->calibrated());
  // After calibration the normalized features should be ~N(0,1).
  double sum0 = 0.0;
  for (int i = 0; i < ds.size(); ++i) {
    const ForwardTrace t = m.Forward(ds.inputs[static_cast<size_t>(i)]);
    sum0 += t.outputs[0][0];
  }
  EXPECT_NEAR(sum0 / ds.size(), 0.0, 0.15);
}

TEST(TrainerTest, LearnsSmallDigitTask) {
  const Dataset train = MakeSyntheticDigits(400, 21);
  const Dataset test = MakeSyntheticDigits(100, 22);
  Model m = ModelZoo::Build("MNI_C1", 5);
  TrainConfig cfg;
  cfg.epochs = 6;
  cfg.learning_rate = 3e-3f;
  cfg.seed = 6;
  Trainer::Fit(&m, train, cfg);
  EXPECT_GT(Trainer::Accuracy(m, test), 0.8f);
}

TEST(TrainerTest, LearnsRegressionTask) {
  const Dataset train = MakeSyntheticRoad(400, 23);
  const Dataset test = MakeSyntheticRoad(100, 24);
  Model m = ModelZoo::Build("DRV_C3", 5);
  TrainConfig cfg;
  cfg.epochs = 3;
  cfg.seed = 7;
  Trainer::Fit(&m, train, cfg);
  const float mse = Trainer::MseOf(m, test);
  EXPECT_LT(mse, 0.08f);
  EXPECT_NEAR(Trainer::PaperAccuracy(m, test), 1.0f - mse, 1e-5f);
}

TEST(TrainerTest, LearnsMalwareTask) {
  const Dataset train = MakeSyntheticDrebin(600, 25);
  const Dataset test = MakeSyntheticDrebin(200, 26);
  Model m = ModelZoo::Build("APP_C2", 5);
  TrainConfig cfg;
  cfg.epochs = 4;
  cfg.seed = 8;
  Trainer::Fit(&m, train, cfg);
  EXPECT_GT(Trainer::Accuracy(m, test), 0.85f);
}

TEST(TrainerTest, AccuracyOnRegressionThrows) {
  const Dataset road = MakeSyntheticRoad(4, 27);
  const Model m = ModelZoo::Build("DRV_C2", 5);
  EXPECT_THROW(Trainer::Accuracy(m, road), std::invalid_argument);
}

TEST(TrainerTest, DeterministicTraining) {
  const Dataset train = MakeSyntheticPdf(200, 28);
  Model a = ModelZoo::Build("PDF_C1", 9);
  Model b = ModelZoo::Build("PDF_C1", 9);
  TrainConfig cfg;
  cfg.epochs = 2;
  cfg.seed = 10;
  Trainer::Fit(&a, train, cfg);
  Trainer::Fit(&b, train, cfg);
  const Tensor x = train.inputs[0];
  const Tensor ya = a.Predict(x);
  const Tensor yb = b.Predict(x);
  for (int64_t i = 0; i < ya.numel(); ++i) {
    EXPECT_FLOAT_EQ(ya[i], yb[i]);
  }
}

}  // namespace
}  // namespace dx

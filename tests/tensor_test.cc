#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <utility>

#include "src/tensor/ops.h"
#include "src/tensor/tensor.h"
#include "src/tensor/workspace.h"
#include "src/util/rng.h"

namespace dx {
namespace {

// ---- Construction / shape ----------------------------------------------------------------

TEST(TensorTest, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.numel(), 0);
}

TEST(TensorTest, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_FLOAT_EQ(t[i], 0.0f);
  }
}

TEST(TensorTest, FillValueConstructor) {
  Tensor t({4}, 2.5f);
  EXPECT_FLOAT_EQ(t.Sum(), 10.0f);
}

TEST(TensorTest, FromValuesChecksCount) {
  EXPECT_THROW(Tensor({2, 2}, std::vector<float>{1.0f}), std::invalid_argument);
}

TEST(TensorTest, ShapeToStringFormat) {
  EXPECT_EQ(ShapeToString({2, 3, 4}), "[2, 3, 4]");
  EXPECT_EQ(ShapeToString({}), "[]");
}

TEST(TensorTest, NumElementsRejectsNegative) {
  EXPECT_THROW(NumElements({2, -1}), std::invalid_argument);
}

TEST(TensorTest, MultiDimIndexing) {
  Tensor t({2, 3}, std::vector<float>{0, 1, 2, 3, 4, 5});
  EXPECT_FLOAT_EQ(t.at({0, 0}), 0.0f);
  EXPECT_FLOAT_EQ(t.at({1, 2}), 5.0f);
  EXPECT_THROW(t.at({2, 0}), std::out_of_range);
  EXPECT_THROW(t.at(std::vector<int>{0}), std::invalid_argument);
}

TEST(TensorTest, FlatAtBoundsChecked) {
  Tensor t({3});
  EXPECT_THROW(t.at(static_cast<int64_t>(3)), std::out_of_range);
  EXPECT_THROW(t.at(static_cast<int64_t>(-1)), std::out_of_range);
}

// ---- Reshape -----------------------------------------------------------------------------

TEST(TensorTest, ReshapePreservesData) {
  Tensor t({2, 3}, std::vector<float>{0, 1, 2, 3, 4, 5});
  Tensor r = t.Reshape({3, 2});
  EXPECT_EQ(r.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ(r.at({2, 1}), 5.0f);
}

TEST(TensorTest, ReshapeInfersDimension) {
  Tensor t({2, 6});
  EXPECT_EQ(t.Reshape({-1}).shape(), (Shape{12}));
  EXPECT_EQ(t.Reshape({3, -1}).shape(), (Shape{3, 4}));
}

TEST(TensorTest, ReshapeRejectsBadShapes) {
  Tensor t({2, 3});
  EXPECT_THROW(t.Reshape({4}), std::invalid_argument);
  EXPECT_THROW(t.Reshape({-1, -1}), std::invalid_argument);
  EXPECT_THROW(t.Reshape({5, -1}), std::invalid_argument);
}

// ---- Elementwise / in-place --------------------------------------------------------------

TEST(TensorTest, InPlaceArithmetic) {
  Tensor a({3}, std::vector<float>{1, 2, 3});
  Tensor b({3}, std::vector<float>{4, 5, 6});
  a.AddInPlace(b);
  EXPECT_FLOAT_EQ(a[2], 9.0f);
  a.SubInPlace(b);
  EXPECT_FLOAT_EQ(a[0], 1.0f);
  a.MulInPlace(b);
  EXPECT_FLOAT_EQ(a[1], 10.0f);
  a.Scale(0.5f);
  EXPECT_FLOAT_EQ(a[1], 5.0f);
  a.AddScalar(1.0f);
  EXPECT_FLOAT_EQ(a[0], 3.0f);
}

TEST(TensorTest, ShapeMismatchThrows) {
  Tensor a({3});
  Tensor b({4});
  EXPECT_THROW(a.AddInPlace(b), std::invalid_argument);
  EXPECT_THROW(a.Axpy(1.0f, b), std::invalid_argument);
}

TEST(TensorTest, ClampInPlace) {
  Tensor t({4}, std::vector<float>{-2, 0.5f, 2, 0});
  t.ClampInPlace(0.0f, 1.0f);
  EXPECT_FLOAT_EQ(t[0], 0.0f);
  EXPECT_FLOAT_EQ(t[1], 0.5f);
  EXPECT_FLOAT_EQ(t[2], 1.0f);
}

TEST(TensorTest, Axpy) {
  Tensor a({2}, std::vector<float>{1, 2});
  Tensor b({2}, std::vector<float>{10, 20});
  a.Axpy(0.1f, b);
  EXPECT_FLOAT_EQ(a[0], 2.0f);
  EXPECT_FLOAT_EQ(a[1], 4.0f);
}

// ---- Reductions --------------------------------------------------------------------------

TEST(TensorTest, Reductions) {
  Tensor t({4}, std::vector<float>{1, -3, 2, 0});
  EXPECT_FLOAT_EQ(t.Sum(), 0.0f);
  EXPECT_FLOAT_EQ(t.Mean(), 0.0f);
  EXPECT_FLOAT_EQ(t.Min(), -3.0f);
  EXPECT_FLOAT_EQ(t.Max(), 2.0f);
  EXPECT_EQ(t.Argmax(), 2);
  EXPECT_FLOAT_EQ(t.L1Norm(), 6.0f);
  EXPECT_FLOAT_EQ(t.L2Norm(), std::sqrt(14.0f));
}

TEST(TensorTest, EmptyReductionsThrow) {
  Tensor t;
  EXPECT_THROW(t.Mean(), std::invalid_argument);
  EXPECT_THROW(t.Min(), std::invalid_argument);
  EXPECT_THROW(t.Max(), std::invalid_argument);
  EXPECT_THROW(t.Argmax(), std::invalid_argument);
}

// ---- Random factories --------------------------------------------------------------------

TEST(TensorTest, RandnMoments) {
  Rng rng(5);
  Tensor t = Tensor::Randn({10000}, rng, 2.0f);
  EXPECT_NEAR(t.Mean(), 0.0f, 0.1f);
  double var = 0.0;
  for (int64_t i = 0; i < t.numel(); ++i) {
    var += static_cast<double>(t[i]) * t[i];
  }
  EXPECT_NEAR(var / static_cast<double>(t.numel()), 4.0, 0.3);
}

TEST(TensorTest, RandUniformRange) {
  Rng rng(5);
  Tensor t = Tensor::RandUniform({1000}, rng, -1.0f, 1.0f);
  EXPECT_GE(t.Min(), -1.0f);
  EXPECT_LT(t.Max(), 1.0f);
}

// ---- MatMul family -----------------------------------------------------------------------

TEST(OpsTest, MatMulKnownValues) {
  Tensor a({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, std::vector<float>{7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(c.at({0, 0}), 58.0f);
  EXPECT_FLOAT_EQ(c.at({0, 1}), 64.0f);
  EXPECT_FLOAT_EQ(c.at({1, 0}), 139.0f);
  EXPECT_FLOAT_EQ(c.at({1, 1}), 154.0f);
}

TEST(OpsTest, MatMulShapeErrors) {
  Tensor a({2, 3});
  Tensor b({2, 2});
  EXPECT_THROW(MatMul(a, b), std::invalid_argument);
  EXPECT_THROW(MatMul(Tensor({3}), b), std::invalid_argument);
}

TEST(OpsTest, TransposeVariantsAgreeWithExplicitTranspose) {
  Rng rng(9);
  Tensor a = Tensor::Randn({4, 5}, rng);
  Tensor b = Tensor::Randn({4, 6}, rng);
  // MatMulTransposeA(a, b) == a^T b.
  Tensor at({5, 4});
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 5; ++j) {
      at.at({j, i}) = a.at({i, j});
    }
  }
  Tensor expected = MatMul(at, b);
  Tensor got = MatMulTransposeA(a, b);
  for (int64_t i = 0; i < expected.numel(); ++i) {
    EXPECT_NEAR(got[i], expected[i], 1e-4f);
  }

  // MatMulTransposeB(a, c) == a c^T.
  Tensor c = Tensor::Randn({7, 5}, rng);
  Tensor ct({5, 7});
  for (int i = 0; i < 7; ++i) {
    for (int j = 0; j < 5; ++j) {
      ct.at({j, i}) = c.at({i, j});
    }
  }
  Tensor expected2 = MatMul(a, ct);
  Tensor got2 = MatMulTransposeB(a, c);
  for (int64_t i = 0; i < expected2.numel(); ++i) {
    EXPECT_NEAR(got2[i], expected2[i], 1e-4f);
  }
}

// ---- Softmax -----------------------------------------------------------------------------

TEST(OpsTest, SoftmaxSumsToOne) {
  Tensor logits({5}, std::vector<float>{1, 2, 3, 4, 5});
  Tensor p = Softmax(logits);
  EXPECT_NEAR(p.Sum(), 1.0f, 1e-5f);
  for (int64_t i = 1; i < p.numel(); ++i) {
    EXPECT_GT(p[i], p[i - 1]);  // Monotone in logits.
  }
}

TEST(OpsTest, SoftmaxStableForLargeLogits) {
  Tensor logits({3}, std::vector<float>{1000, 1001, 1002});
  Tensor p = Softmax(logits);
  EXPECT_NEAR(p.Sum(), 1.0f, 1e-5f);
  EXPECT_FALSE(std::isnan(p[0]));
}

TEST(OpsTest, SoftmaxRowwiseFor2D) {
  Tensor logits({2, 3}, std::vector<float>{1, 1, 1, 0, 0, 10});
  Tensor p = Softmax(logits);
  EXPECT_NEAR(p.at({0, 0}), 1.0f / 3.0f, 1e-5f);
  EXPECT_GT(p.at({1, 2}), 0.99f);
}

// ---- OneHot / L1 -------------------------------------------------------------------------

TEST(OpsTest, OneHot) {
  Tensor t = OneHot(2, 5);
  EXPECT_FLOAT_EQ(t.Sum(), 1.0f);
  EXPECT_FLOAT_EQ(t[2], 1.0f);
  EXPECT_THROW(OneHot(5, 5), std::out_of_range);
  EXPECT_THROW(OneHot(-1, 5), std::out_of_range);
}

TEST(OpsTest, L1Distance) {
  Tensor a({3}, std::vector<float>{1, 2, 3});
  Tensor b({3}, std::vector<float>{2, 0, 3});
  EXPECT_FLOAT_EQ(L1Distance(a, b), 3.0f);
  EXPECT_THROW(L1Distance(a, Tensor({4})), std::invalid_argument);
}

TEST(OpsTest, ElementwiseFreeFunctions) {
  Tensor a({2}, std::vector<float>{1, 2});
  Tensor b({2}, std::vector<float>{3, 4});
  EXPECT_FLOAT_EQ(Add(a, b)[1], 6.0f);
  EXPECT_FLOAT_EQ(Sub(a, b)[0], -2.0f);
  EXPECT_FLOAT_EQ(Mul(a, b)[1], 8.0f);
}

// ---- Reshape rvalue overload -------------------------------------------------------------

TEST(TensorTest, ReshapeRvalueMovesData) {
  Tensor t({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  const float* before = t.data();
  Tensor flat = std::move(t).Reshape({6});
  // The data vector moved: same heap buffer, no copy.
  EXPECT_EQ(flat.data(), before);
  EXPECT_EQ(flat.shape(), (Shape{6}));
  EXPECT_FLOAT_EQ(flat[5], 6.0f);
}

TEST(TensorTest, ReshapeLvalueStillCopies) {
  const Tensor t({2, 2}, std::vector<float>{1, 2, 3, 4});
  const Tensor r = t.Reshape({4});
  EXPECT_NE(r.data(), t.data());
  EXPECT_EQ(r.values(), t.values());
  EXPECT_THROW(t.Reshape({3}), std::invalid_argument);
  EXPECT_FLOAT_EQ(t.Reshape({-1})[3], 4.0f);
}

// ---- In-place resize / batch-dim ---------------------------------------------------------

TEST(TensorTest, ResizeInPlaceReusesStorage) {
  Tensor t({4, 3});
  t.Fill(7.0f);
  const int64_t cap = t.Capacity();
  t.ResizeInPlace({2, 3});
  EXPECT_EQ(t.numel(), 6);
  EXPECT_FLOAT_EQ(t[5], 7.0f);  // Existing elements survive.
  EXPECT_GE(t.Capacity(), cap);
  t.ResizeInPlace({4, 3});  // Grow back within capacity; new elements zeroed.
  EXPECT_EQ(t.numel(), 12);
}

TEST(TensorTest, SetBatchDimAdjustsLeadingDimension) {
  Tensor t({4, 5});
  t.Fill(1.0f);
  const float* before = t.data();
  t.SetBatchDim(2);
  EXPECT_EQ(t.shape(), (Shape{2, 5}));
  EXPECT_EQ(t.numel(), 10);
  t.SetBatchDim(4);
  EXPECT_EQ(t.data(), before);  // Within capacity: storage unchanged.
  EXPECT_EQ(t.numel(), 20);
  Tensor scalarish;
  EXPECT_THROW(scalarish.SetBatchDim(2), std::logic_error);
}

// ---- TensorView --------------------------------------------------------------------------

TEST(TensorViewTest, ConstViewReadsWithoutOwning) {
  const Tensor t({2, 3}, std::vector<float>{1, 9, 2, 3, 4, 0});
  const ConstTensorView v(t);
  EXPECT_EQ(v.numel(), 6);
  EXPECT_EQ(&v.shape(), &t.shape());
  EXPECT_EQ(v.data(), t.data());
  EXPECT_FLOAT_EQ(v[1], 9.0f);
  EXPECT_EQ(v.Argmax(), 1);
  EXPECT_FLOAT_EQ(v.Sum(), t.Sum());
}

TEST(TensorViewTest, SampleRowView) {
  // The executor's difference check reads per-sample rows of batched
  // outputs through views: pointer offset + borrowed sample shape.
  const Tensor batched({3, 4}, std::vector<float>{0, 1, 2, 3,  //
                                                  9, 8, 7, 6,  //
                                                  5, 5, 9, 5});
  const Shape sample_shape{4};
  const ConstTensorView row1(batched.data() + 4, &sample_shape, 4);
  EXPECT_EQ(row1.Argmax(), 0);
  const ConstTensorView row2(batched.data() + 8, &sample_shape, 4);
  EXPECT_EQ(row2.Argmax(), 2);
}

TEST(TensorViewTest, MutableViewWrites) {
  Tensor t({4});
  TensorView v(t);
  v.Fill(2.5f);
  v[3] = -1.0f;
  EXPECT_FLOAT_EQ(t[0], 2.5f);
  EXPECT_FLOAT_EQ(t[3], -1.0f);
  const ConstTensorView cv = v;  // Mutable view converts to const view.
  EXPECT_EQ(cv.data(), t.data());
}

// ---- Workspace ---------------------------------------------------------------------------

TEST(WorkspaceTest, RewindReusesSlotsWithoutReallocating) {
  Workspace ws;
  Tensor* a = ws.Acquire({4, 4});
  Tensor* b = ws.Acquire({2});
  EXPECT_NE(a, b);
  EXPECT_EQ(ws.slots(), 2u);
  a->Fill(1.0f);
  const float* storage = a->data();
  ws.Rewind();
  Tensor* a2 = ws.Acquire({4, 4});
  EXPECT_EQ(a2, a);             // Same slot...
  EXPECT_EQ(a2->data(), storage);  // ...same storage, no reallocation.
  EXPECT_EQ(ws.slots(), 2u);
}

TEST(WorkspaceTest, SlotsShrinkAndGrowWithinCapacity) {
  Workspace ws;
  Tensor* big = ws.Acquire({8, 8});
  const int64_t cap = big->Capacity();
  ws.Rewind();
  Tensor* small = ws.Acquire({3});
  EXPECT_EQ(small->numel(), 3);
  EXPECT_GE(small->Capacity(), cap);  // Storage retained across reshapes.
  ws.Rewind();
  EXPECT_EQ(ws.Acquire({8, 8})->numel(), 64);
}

TEST(WorkspaceTest, AcquireFlatKeepsElementCount) {
  Workspace ws;
  Tensor* t = ws.AcquireFlat(12);
  EXPECT_EQ(t->numel(), 12);
  EXPECT_EQ(t->ndim(), 1);
  ws.Rewind();
  EXPECT_EQ(ws.AcquireFlat(12), t);
  EXPECT_EQ(ws.slots(), 1u);
}

}  // namespace
}  // namespace dx

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <future>
#include <numeric>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "src/util/cache.h"
#include "src/util/image_io.h"
#include "src/util/rng.h"
#include "src/util/serialize.h"
#include "src/util/table.h"
#include "src/util/thread_pool.h"
#include "src/util/timer.h"

namespace dx {
namespace {

// ---- Rng ---------------------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.NextU64() == b.NextU64() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformIntBoundsInclusive) {
  Rng rng(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // All values hit.
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(3);
  EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, UniformIntThrowsOnInvertedRange) {
  Rng rng(3);
  EXPECT_THROW(rng.UniformInt(2, 1), std::invalid_argument);
}

TEST(RngTest, NormalMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto orig = v;
  rng.Shuffle(v);
  EXPECT_NE(v, orig);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(19);
  const auto sample = rng.SampleWithoutReplacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (const int v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 50);
  }
}

TEST(RngTest, SampleWithoutReplacementThrowsWhenTooMany) {
  Rng rng(19);
  EXPECT_THROW(rng.SampleWithoutReplacement(5, 6), std::invalid_argument);
}

TEST(RngTest, ForkStreamsAreIndependent) {
  Rng parent(23);
  Rng child = parent.Fork();
  // A fork must not replay the parent's stream.
  Rng parent_copy(23);
  parent_copy.NextU64();  // Advance past the fork draw.
  EXPECT_NE(child.NextU64(), parent_copy.NextU64());
}

// ---- ThreadPool --------------------------------------------------------------------------

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](int64_t i) { hits[static_cast<size_t>(i)]++; });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, ParallelForEmptyAndSingle) {
  ThreadPool pool(2);
  int count = 0;
  pool.ParallelFor(0, [&](int64_t) { ++count; });
  EXPECT_EQ(count, 0);
  pool.ParallelFor(1, [&](int64_t) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(100,
                                [&](int64_t i) {
                                  if (i == 57) {
                                    throw std::runtime_error("boom");
                                  }
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, GlobalPoolUsable) {
  std::atomic<int64_t> sum{0};
  ParallelFor(100, [&](int64_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 4950);
}

// Regression test for the nested-ParallelFor deadlock: before re-entrant
// calls degraded to serial, a task calling ParallelFor on its own pool queued
// chunks that no worker could ever pick up (they were all blocked waiting for
// the outer loop). The whole thing runs on a watchdog thread so a regression
// fails the test after a timeout instead of hanging ctest forever.
TEST(ThreadPoolTest, NestedParallelForOnSamePoolRunsSerially) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  std::packaged_task<void()> work([&] {
    pool.ParallelFor(8, [&](int64_t) {
      pool.ParallelFor(8, [&](int64_t) { count.fetch_add(1); });
    });
  });
  std::future<void> done = work.get_future();
  std::thread runner(std::move(work));
  if (done.wait_for(std::chrono::seconds(120)) != std::future_status::ready) {
    runner.detach();  // Leak the wedged thread; the test already failed.
    FAIL() << "nested ParallelFor deadlocked (timed out after 120s)";
  }
  runner.join();
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolTest, NestedParallelForStillCoversAllIndicesThreeDeep) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  pool.ParallelFor(4, [&](int64_t) {
    pool.ParallelFor(4, [&](int64_t) {
      pool.ParallelFor(4, [&](int64_t) { count.fetch_add(1); });
    });
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolTest, NestedParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(4,
                                [&](int64_t i) {
                                  pool.ParallelFor(4, [&](int64_t j) {
                                    if (i == 2 && j == 3) {
                                      throw std::runtime_error("nested boom");
                                    }
                                  });
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, InParallelRegionReflectsNesting) {
  EXPECT_FALSE(ThreadPool::InParallelRegion());
  ThreadPool pool(2);
  std::atomic<int> inside{0};
  pool.ParallelFor(4, [&](int64_t) {
    if (ThreadPool::InParallelRegion()) {
      inside.fetch_add(1);
    }
  });
  EXPECT_EQ(inside.load(), 4);
  EXPECT_FALSE(ThreadPool::InParallelRegion());
}

TEST(ThreadPoolTest, ConcurrentIndependentParallelForsShareOnePool) {
  // The daemon shares one compute pool across campaigns: independent
  // (non-nested) ParallelFor calls from different threads must interleave
  // without deadlock or lost indices.
  ThreadPool pool(2);
  std::atomic<int64_t> sum{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&] {
      pool.ParallelFor(100, [&](int64_t i) { sum.fetch_add(i + 1); });
    });
  }
  for (auto& c : callers) {
    c.join();
  }
  EXPECT_EQ(sum.load(), 4 * 5050);
}

// ---- Image IO ----------------------------------------------------------------------------

TEST(ImageIoTest, PgmRoundTrip) {
  const int h = 8;
  const int w = 6;
  std::vector<float> img(static_cast<size_t>(h) * w);
  for (size_t i = 0; i < img.size(); ++i) {
    img[i] = static_cast<float>(i) / static_cast<float>(img.size());
  }
  const std::string path = ::testing::TempDir() + "/dx_test.pgm";
  WriteImage(path, img, h, w, 1);
  int rh = 0;
  int rw = 0;
  int rc = 0;
  const auto back = ReadImage(path, &rh, &rw, &rc);
  EXPECT_EQ(rh, h);
  EXPECT_EQ(rw, w);
  EXPECT_EQ(rc, 1);
  for (size_t i = 0; i < img.size(); ++i) {
    EXPECT_NEAR(back[i], img[i], 1.0f / 255.0f);
  }
}

TEST(ImageIoTest, PpmRoundTrip) {
  const int h = 4;
  const int w = 5;
  std::vector<float> img(static_cast<size_t>(h) * w * 3, 0.5f);
  const std::string path = ::testing::TempDir() + "/dx_test.ppm";
  WriteImage(path, img, h, w, 3);
  int rh = 0;
  int rw = 0;
  int rc = 0;
  const auto back = ReadImage(path, &rh, &rw, &rc);
  EXPECT_EQ(rc, 3);
  EXPECT_EQ(back.size(), img.size());
}

TEST(ImageIoTest, ClampsOutOfRangeValues) {
  std::vector<float> img = {-1.0f, 2.0f};
  const std::string path = ::testing::TempDir() + "/dx_clamp.pgm";
  WriteImage(path, img, 1, 2, 1);
  int rh = 0;
  int rw = 0;
  int rc = 0;
  const auto back = ReadImage(path, &rh, &rw, &rc);
  EXPECT_FLOAT_EQ(back[0], 0.0f);
  EXPECT_FLOAT_EQ(back[1], 1.0f);
}

TEST(ImageIoTest, RejectsBadDimensions) {
  std::vector<float> img(10, 0.0f);
  EXPECT_THROW(WriteImage("/tmp/x.pgm", img, 3, 3, 1), std::invalid_argument);
  EXPECT_THROW(WriteImage("/tmp/x.pgm", img, 5, 2, 2), std::invalid_argument);
}

TEST(ImageIoTest, AsciiArtShape) {
  std::vector<float> img(28 * 28, 0.0f);
  const std::string art = AsciiArt(img, 28, 28, 1);
  // 28 rows of 28 chars plus newlines.
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 28);
}

// ---- Table -------------------------------------------------------------------------------

TEST(TableTest, RendersAlignedColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22222"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| name  | value |"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
}

TEST(TableTest, PadsShortRows) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"x"});
  EXPECT_NE(t.ToString().find("| x |"), std::string::npos);
}

TEST(TableTest, NumberFormatting) {
  EXPECT_EQ(TablePrinter::Num(1.5), "1.5");
  EXPECT_EQ(TablePrinter::Num(2.0), "2");
  EXPECT_EQ(TablePrinter::Num(0.125, 3), "0.125");
  EXPECT_EQ(TablePrinter::Percent(0.327), "32.7%");
}

// ---- Serialize ---------------------------------------------------------------------------

TEST(SerializeTest, RoundTripsAllTypes) {
  std::ostringstream out(std::ios::binary);
  BinaryWriter w(out);
  w.WriteU32(7);
  w.WriteI64(-42);
  w.WriteF32(3.25f);
  w.WriteString("hello");
  w.WriteFloats({1.0f, 2.0f, 3.0f});
  w.WriteInts({4, 5});

  std::istringstream in(out.str(), std::ios::binary);
  BinaryReader r(in);
  EXPECT_EQ(r.ReadU32(), 7u);
  EXPECT_EQ(r.ReadI64(), -42);
  EXPECT_FLOAT_EQ(r.ReadF32(), 3.25f);
  EXPECT_EQ(r.ReadString(), "hello");
  EXPECT_EQ(r.ReadFloats(), (std::vector<float>{1.0f, 2.0f, 3.0f}));
  EXPECT_EQ(r.ReadInts(), (std::vector<int>{4, 5}));
}

TEST(SerializeTest, ThrowsOnTruncation) {
  std::istringstream in("xy", std::ios::binary);
  BinaryReader r(in);
  EXPECT_THROW(r.ReadU64(), std::runtime_error);
}

// ---- Cache -------------------------------------------------------------------------------

TEST(CacheTest, PutGetRoundTrip) {
  const std::string dir = ::testing::TempDir() + "/dx_cache_test";
  std::filesystem::remove_all(dir);
  FileCache cache(dir);
  EXPECT_FALSE(cache.Get("missing").has_value());
  cache.Put("key1", "payload");
  const auto got = cache.Get("key1");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "payload");
}

TEST(CacheTest, DistinctKeysDistinctEntries) {
  const std::string dir = ::testing::TempDir() + "/dx_cache_test2";
  std::filesystem::remove_all(dir);
  FileCache cache(dir);
  cache.Put("a", "1");
  cache.Put("b", "2");
  EXPECT_EQ(*cache.Get("a"), "1");
  EXPECT_EQ(*cache.Get("b"), "2");
}

TEST(CacheTest, Fnv1aStable) {
  // Known FNV-1a 64 test vector.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
}

// ---- Timer -------------------------------------------------------------------------------

TEST(TimerTest, MeasuresNonNegativeMonotonicTime) {
  Timer t;
  const double a = t.ElapsedSeconds();
  const double b = t.ElapsedSeconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  t.Reset();
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
}

}  // namespace
}  // namespace dx

// Batched execution tests: every batched layer kernel must be bit-identical
// to its per-sample counterpart, Model::ForwardBatch/BackwardInputBatch must
// reproduce the scalar trace exactly, Session results must be invariant to
// batch size and worker count, and the executor must forward each
// (seed, model, iteration) exactly once (the single-pass guarantee).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "src/baselines/random_testing.h"
#include "src/constraints/constraint.h"
#include "src/constraints/image_constraints.h"
#include "src/data/dataset.h"
#include "src/core/objective.h"
#include "src/core/seed_scheduler.h"
#include "src/core/session.h"
#include "src/coverage/coverage_metric.h"
#include "src/models/trainer.h"
#include "src/nn/batchnorm.h"
#include "src/nn/conv2d.h"
#include "src/nn/dense.h"
#include "src/nn/dropout.h"
#include "src/nn/flatten.h"
#include "src/nn/model.h"
#include "src/nn/pool2d.h"
#include "src/nn/residual.h"
#include "src/nn/softmax_layer.h"
#include "src/tensor/ops.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace dx {
namespace {

// One full 8-lane dense block plus a tail, so both batch code paths run.
constexpr int kBatch = 13;

// Hand-picked-shape instantiation of the shared harness; the randomized
// shape/batch sweep lives in tests/batch_property_test.cc.
void ExpectBatchMatchesScalar(const Layer& layer, const Shape& in_shape, uint64_t seed) {
  testing::ExpectBatchMatchesScalar(layer, in_shape, kBatch, seed);
}

TEST(BatchKernelTest, Dense) {
  for (const Activation act : {Activation::kNone, Activation::kRelu, Activation::kTanh}) {
    Rng rng(11);
    Dense layer(13, 7, act);
    layer.InitParams(rng);
    ExpectBatchMatchesScalar(layer, {13}, 100 + static_cast<uint64_t>(act));
  }
}

TEST(BatchKernelTest, Conv2D) {
  Rng rng(12);
  Conv2D layer(2, 4, 3, 3, 2, 1, Activation::kRelu);
  layer.InitParams(rng);
  ExpectBatchMatchesScalar(layer, {2, 9, 9}, 101);
}

TEST(BatchKernelTest, Pool2DMaxAndAvg) {
  ExpectBatchMatchesScalar(Pool2D(PoolMode::kMax, 2), {3, 8, 8}, 102);
  ExpectBatchMatchesScalar(Pool2D(PoolMode::kAvg, 2), {3, 8, 8}, 103);
}

TEST(BatchKernelTest, Flatten) { ExpectBatchMatchesScalar(Flatten(), {2, 4, 4}, 104); }

TEST(BatchKernelTest, Softmax) { ExpectBatchMatchesScalar(SoftmaxLayer(), {9}, 105); }

TEST(BatchKernelTest, BatchNormFlatAndChw) {
  BatchNorm flat(6);
  flat.SetStatistics({0.1f, -0.2f, 0.3f, 0.0f, 1.0f, -1.0f},
                     {1.0f, 0.5f, 2.0f, 1.5f, 0.25f, 1.0f});
  ExpectBatchMatchesScalar(flat, {6}, 106);
  BatchNorm chw(3);
  chw.SetStatistics({0.5f, -0.5f, 0.0f}, {1.0f, 2.0f, 0.5f});
  ExpectBatchMatchesScalar(chw, {3, 5, 5}, 107);
}

TEST(BatchKernelTest, DropoutInferenceViaDefaultPath) {
  // Dropout keeps the base-class per-sample loop; inference is identity.
  ExpectBatchMatchesScalar(Dropout(0.4f), {10}, 108);
}

TEST(BatchKernelTest, ResidualBlockWithProjection) {
  Rng rng(13);
  ResidualBlock layer(2, 4, 2);
  layer.InitParams(rng);
  ExpectBatchMatchesScalar(layer, {2, 8, 8}, 109);
}

// ---- Model level -------------------------------------------------------------------------

Model MakeConvNet(uint64_t seed) {
  Rng rng(seed);
  Model m("convnet", {1, 12, 12});
  m.Emplace<Conv2D>(1, 4, 3, 3, 1, 1, Activation::kRelu).InitParams(rng);
  m.Emplace<Pool2D>(PoolMode::kMax, 2);
  m.Emplace<Flatten>();
  m.Emplace<Dense>(4 * 6 * 6, 16, Activation::kTanh).InitParams(rng);
  m.Emplace<Dense>(16, 3).InitParams(rng);
  m.Emplace<SoftmaxLayer>();
  return m;
}

TEST(BatchModelTest, ForwardBatchMatchesScalarTrace) {
  const Model m = MakeConvNet(21);
  Rng rng(22);
  std::vector<Tensor> inputs;
  std::vector<const Tensor*> ptrs;
  for (int b = 0; b < kBatch; ++b) {
    inputs.push_back(Tensor::RandUniform(m.input_shape(), rng));
  }
  for (const Tensor& t : inputs) {
    ptrs.push_back(&t);
  }
  const BatchTrace batched = m.ForwardBatch(StackSamples(ptrs));
  ASSERT_EQ(batched.batch, kBatch);
  for (int b = 0; b < kBatch; ++b) {
    const ForwardTrace scalar = m.Forward(inputs[static_cast<size_t>(b)]);
    const ForwardTrace view = batched.Sample(b);
    ASSERT_EQ(view.outputs.size(), scalar.outputs.size());
    for (size_t l = 0; l < scalar.outputs.size(); ++l) {
      EXPECT_EQ(view.outputs[l].values(), scalar.outputs[l].values()) << "layer " << l;
    }
  }
}

TEST(BatchModelTest, BackwardInputBatchMatchesScalar) {
  const Model m = MakeConvNet(23);
  Rng rng(24);
  std::vector<Tensor> inputs;
  std::vector<const Tensor*> ptrs;
  for (int b = 0; b < kBatch; ++b) {
    inputs.push_back(Tensor::RandUniform(m.input_shape(), rng));
  }
  for (const Tensor& t : inputs) {
    ptrs.push_back(&t);
  }
  const BatchTrace batched = m.ForwardBatch(StackSamples(ptrs));
  const int last = m.num_layers() - 1;
  std::vector<Tensor> seeds;
  std::vector<const Tensor*> seed_ptrs;
  for (int b = 0; b < kBatch; ++b) {
    seeds.push_back(Tensor::RandUniform(m.output_shape(), rng, -1.0f, 1.0f));
  }
  for (const Tensor& t : seeds) {
    seed_ptrs.push_back(&t);
  }
  const Tensor batched_grad = m.BackwardInputBatch(batched, last, StackSamples(seed_ptrs));
  for (int b = 0; b < kBatch; ++b) {
    const ForwardTrace scalar = m.Forward(inputs[static_cast<size_t>(b)]);
    const Tensor scalar_grad =
        m.BackwardInput(scalar, last, seeds[static_cast<size_t>(b)]);
    EXPECT_EQ(SliceSample(batched_grad, b).values(), scalar_grad.values()) << b;
  }
}

TEST(BatchModelTest, ForwardPassCounterCountsSamples) {
  const Model m = MakeConvNet(25);
  m.ResetForwardPasses();
  Rng rng(26);
  const Tensor x = Tensor::RandUniform(m.input_shape(), rng);
  m.Forward(x);
  EXPECT_EQ(m.forward_passes(), 1);
  std::vector<const Tensor*> ptrs = {&x, &x, &x};
  m.ForwardBatch(StackSamples(ptrs));
  EXPECT_EQ(m.forward_passes(), 4);
}

// ---- Coverage metric batch entry point ---------------------------------------------------

TEST(BatchMetricTest, UpdateBatchMatchesSequentialScalarUpdates) {
  const Model m = MakeConvNet(27);
  Rng rng(28);
  std::vector<Tensor> inputs;
  std::vector<const Tensor*> ptrs;
  for (int b = 0; b < kBatch; ++b) {
    inputs.push_back(Tensor::RandUniform(m.input_shape(), rng));
  }
  for (const Tensor& t : inputs) {
    ptrs.push_back(&t);
  }
  const BatchTrace batched = m.ForwardBatch(StackSamples(ptrs));
  CoverageOptions options;
  options.threshold = 0.2f;
  for (const std::string& name : CoverageMetricNames()) {
    auto via_batch = MakeCoverageMetric(name, m, options);
    auto via_scalar = MakeCoverageMetric(name, m, options);
    via_batch->UpdateBatch(m, batched);
    for (int b = 0; b < kBatch; ++b) {
      via_scalar->Update(m, m.Forward(inputs[static_cast<size_t>(b)]));
    }
    EXPECT_EQ(via_batch->covered_items(), via_scalar->covered_items()) << name;
    EXPECT_FLOAT_EQ(via_batch->Coverage(), via_scalar->Coverage()) << name;
  }
}

// ---- Session invariance ------------------------------------------------------------------

Dataset MakeToyTask(int n, uint64_t seed) {
  Rng rng(seed);
  Dataset ds{"toy", {2}, 2, {}, {}};
  while (ds.size() < n) {
    Tensor x({2});
    x[0] = rng.NextFloat();
    x[1] = rng.NextFloat();
    if (std::abs(x[0] - x[1]) < 0.08f) {
      continue;
    }
    const float label = x[0] > x[1] ? 0.0f : 1.0f;  // Before the move.
    ds.Add(std::move(x), label);
  }
  return ds;
}

Model MakeToyClassifier(const std::string& name, int hidden, uint64_t seed) {
  Rng rng(seed);
  Model m(name, {2});
  m.Emplace<Dense>(2, hidden, Activation::kRelu).InitParams(rng);
  m.Emplace<Dense>(hidden, 2).InitParams(rng);
  m.Emplace<SoftmaxLayer>();
  return m;
}

class BatchSessionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const Dataset train = MakeToyTask(500, 2);
    models_ = new std::vector<Model>();
    models_->push_back(MakeToyClassifier("bt_a", 16, 41));
    models_->push_back(MakeToyClassifier("bt_b", 24, 42));
    models_->push_back(MakeToyClassifier("bt_c", 12, 43));
    for (Model& m : *models_) {
      TrainConfig cfg;
      cfg.epochs = 8;
      cfg.learning_rate = 5e-3f;
      cfg.seed = 7;
      Trainer::Fit(&m, train, cfg);
      ASSERT_GT(Trainer::Accuracy(m, train), 0.9f);
    }
    seeds_ = new std::vector<Tensor>();
    Rng rng(44);
    while (seeds_->size() < 30) {
      Tensor x({2});
      x[0] = rng.NextFloat();
      x[1] = rng.NextFloat();
      const float margin = std::abs(x[0] - x[1]);
      if (margin > 0.1f && margin < 0.3f) {
        seeds_->push_back(std::move(x));
      }
    }
  }
  static void TearDownTestSuite() {
    delete seeds_;
    delete models_;
    seeds_ = nullptr;
    models_ = nullptr;
  }

  static std::vector<Model*> ModelPtrs() {
    std::vector<Model*> ptrs;
    for (Model& m : *models_) {
      ptrs.push_back(&m);
    }
    return ptrs;
  }

  static SessionConfig BaseConfig() {
    SessionConfig config;
    config.engine.lambda1 = 2.5f;
    config.engine.step = 0.05f;
    config.engine.max_iterations_per_seed = 120;
    config.engine.rng_seed = 19;
    return config;
  }

  static RunStats RunWith(int batch_size, int workers) {
    SessionConfig config = BaseConfig();
    config.batch_size = batch_size;
    config.workers = workers;
    UnconstrainedImage constraint;
    Session session(ModelPtrs(), &constraint, config);
    return session.Run(*seeds_, RunOptions{});
  }

  static std::vector<Model>* models_;
  static std::vector<Tensor>* seeds_;
};

std::vector<Model>* BatchSessionTest::models_ = nullptr;
std::vector<Tensor>* BatchSessionTest::seeds_ = nullptr;

TEST_F(BatchSessionTest, ResultsAreBitIdenticalAcrossBatchSizesAndWorkers) {
  const RunStats reference = RunWith(/*batch_size=*/1, /*workers=*/1);
  ASSERT_GT(reference.tests.size(), 0u);
  for (const int batch_size : {3, 8}) {
    for (const int workers : {1, 4}) {
      const RunStats other = RunWith(batch_size, workers);
      ASSERT_EQ(other.tests.size(), reference.tests.size())
          << "batch=" << batch_size << " workers=" << workers;
      EXPECT_EQ(other.seeds_tried, reference.seeds_tried);
      EXPECT_EQ(other.seeds_skipped, reference.seeds_skipped);
      EXPECT_EQ(other.total_iterations, reference.total_iterations);
      EXPECT_EQ(other.forward_passes, reference.forward_passes);
      EXPECT_FLOAT_EQ(other.mean_coverage, reference.mean_coverage);
      for (size_t i = 0; i < reference.tests.size(); ++i) {
        EXPECT_EQ(other.tests[i].input.values(), reference.tests[i].input.values())
            << "batch=" << batch_size << " workers=" << workers << " test " << i;
        EXPECT_EQ(other.tests[i].seed_index, reference.tests[i].seed_index);
        EXPECT_EQ(other.tests[i].iterations, reference.tests[i].iterations);
        EXPECT_EQ(other.tests[i].deviating_model, reference.tests[i].deviating_model);
      }
    }
  }
}

TEST_F(BatchSessionTest, EachSeedModelIterationForwardsExactlyOnce) {
  SessionConfig config = BaseConfig();
  UnconstrainedImage constraint;
  Session session(ModelPtrs(), &constraint, config);
  int checked = 0;
  for (size_t i = 0; i < seeds_->size() && checked < 5; ++i) {
    for (Model* m : ModelPtrs()) {
      m->ResetForwardPasses();
    }
    const auto result = session.GenerateFromSeed((*seeds_)[i], static_cast<int>(i));
    if (!result.has_value()) {
      continue;
    }
    ++checked;
    // One consensus pass over the seed plus exactly one pass per iteration:
    // the objective gradient, the difference check, and the coverage update
    // all consumed the same shared trace.
    for (Model* m : ModelPtrs()) {
      EXPECT_EQ(m->forward_passes(), result->iterations + 1)
          << m->name() << " seed " << i;
    }
  }
  ASSERT_GT(checked, 0);
}

TEST_F(BatchSessionTest, RunStatsForwardPassesAccountsAllModels) {
  const RunStats stats = RunWith(/*batch_size=*/4, /*workers=*/1);
  // 3 models, each forwarding (iterations + 1) per productive seed and at
  // least one consensus pass per tried seed.
  EXPECT_GE(stats.forward_passes,
            3 * (stats.total_iterations + static_cast<int64_t>(stats.seeds_tried)));
}

// ---- Plug-in registries ------------------------------------------------------------------

TEST(RegistryTest, CustomObjectiveIsDiscoverable) {
  RegisterObjective("test-null-objective", []() -> std::unique_ptr<Objective> {
    return std::make_unique<RandomPerturbationObjective>();
  });
  const auto names = ObjectiveNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "test-null-objective"), names.end());
  EXPECT_NE(MakeObjective("test-null-objective"), nullptr);
  EXPECT_THROW(MakeObjective("no-such-objective"), std::invalid_argument);
}

TEST(RegistryTest, CustomSchedulerIsDiscoverable) {
  RegisterSeedScheduler("test-rr", []() -> std::unique_ptr<SeedScheduler> {
    return std::make_unique<RoundRobinScheduler>();
  });
  const auto names = SeedSchedulerNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "test-rr"), names.end());
  EXPECT_NE(MakeSeedScheduler("test-rr"), nullptr);
  // Historical aliases still resolve but stay out of the canonical listing.
  EXPECT_NE(MakeSeedScheduler("round-robin"), nullptr);
  EXPECT_EQ(std::find(names.begin(), names.end(), "round-robin"), names.end());
}

}  // namespace
}  // namespace dx

#!/usr/bin/env bash
# Re-records the scenario-matrix golden files (tests/goldens/*.json).
#
# Usage: tools/record_goldens.sh [build-dir]   (default: build)
#
# Run this after an INTENTIONAL engine change, then review the golden diff
# like any other code change — every delta is a behavior delta across the
# dataset x metric x objective x scheduler matrix. The recording run still
# enforces the batch-size/worker-count invariance checks.
#
# You usually do NOT need to re-record for a toolchain change: integer
# metrics (counts, covered items) are robust to small float drift, and float
# metrics are compared under the per-metric ULP/abs tolerances written into
# each golden's "tolerances" header. Re-record only when the drift is large
# enough to move an integer metric or exceed a float tolerance — and treat
# that as a signal worth understanding, not noise.
#
# DEEPXPLORE_FAST is set by the test binary itself; the trained-model disk
# cache makes repeat recordings fast.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S . > /dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)" --target scenario_matrix_test

echo "==> recording goldens into tests/goldens/"
DX_RECORD_GOLDENS=1 "$BUILD_DIR/scenario_matrix_test"

echo "==> verifying the freshly recorded goldens reproduce"
"$BUILD_DIR/scenario_matrix_test"

echo "==> done; review the diff:"
git -C . diff --stat -- tests/goldens/ || true

// dxplored: the DeepXplore campaign service daemon.
//
// Hosts a CampaignManager (many concurrent campaigns over one shared compute
// pool and trained-model cache) behind a newline-delimited-JSON ctl socket
// and an HTTP introspection plane (/health, /metrics). See
// docs/ARCHITECTURE.md "Campaign service".
//
//   dxplored [--host H] [--port P] [--http-port P] [--campaign-workers N]
//            [--compute-threads N] [--slice N]
//   dxplored --drain [--host H] [--port P]
//
// The daemon runs until a `drain` ctl request (or SIGINT/SIGTERM): it stops
// accepting submissions, checkpoints every running campaign at its next sync
// batch boundary, and exits 0 — durable campaigns resume bit-identically via
// `dxplorectl submit corpus_dir=... resume=true` after a restart.
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "src/service/client.h"
#include "src/service/daemon.h"

namespace {

constexpr const char* kUsage = R"(usage:
  dxplored [options]           run the campaign service
  dxplored --drain [options]   ask a running daemon to shut down gracefully

options:
  --host H              bind/connect address            (default: 127.0.0.1)
  --port P              ctl socket port; 0 = ephemeral  (default: 7077)
  --http-port P         /health + /metrics port; 0 = ephemeral (default: 7078)
  --campaign-workers N  concurrent campaign slices      (default: 2)
  --compute-threads N   shared executor pool threads; 0 = cores-1
  --slice N             sync batches per scheduling slice (default: 1)
)";

dx::Daemon* g_daemon = nullptr;

void HandleSignal(int) {
  if (g_daemon != nullptr) {
    g_daemon->RequestDrain();  // async-signal-safe: a relaxed atomic store
  }
}

}  // namespace

int main(int argc, char** argv) {
  dx::DaemonOptions options;
  bool drain = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n" << kUsage;
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    } else if (arg == "--drain") {
      drain = true;
    } else if (arg == "--host") {
      options.host = next();
    } else if (arg == "--port") {
      options.port = std::atoi(next());
    } else if (arg == "--http-port") {
      options.http_port = std::atoi(next());
    } else if (arg == "--campaign-workers") {
      options.manager.campaign_workers = std::atoi(next());
    } else if (arg == "--compute-threads") {
      options.manager.compute_threads = std::atoi(next());
    } else if (arg == "--slice") {
      options.manager.slice_batches = std::atoi(next());
    } else {
      std::cerr << "unknown option " << arg << "\n" << kUsage;
      return 2;
    }
  }

  if (drain) {
    try {
      dx::Json request = dx::Json::Object();
      request["cmd"] = dx::Json("drain");
      dx::Json response = dx::CtlRequest(options.host, options.port, request);
      std::cout << response.Dump() << "\n";
      return response.GetBool("ok", false) ? 0 : 1;
    } catch (const std::exception& e) {
      std::cerr << "dxplored --drain: " << e.what() << "\n";
      return 3;
    }
  }

  try {
    dx::Daemon daemon(options);
    daemon.Start();
    g_daemon = &daemon;
    std::signal(SIGINT, HandleSignal);
    std::signal(SIGTERM, HandleSignal);
    // One parseable line for scripts (ephemeral ports land here).
    std::cout << "dxplored listening ctl=" << daemon.port()
              << " http=" << daemon.http_port() << std::endl;
    daemon.WaitForShutdown();
    std::cout << "dxplored drained; all campaigns checkpointed" << std::endl;
    g_daemon = nullptr;
    daemon.Stop();
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "dxplored: " << e.what() << "\n";
    return 1;
  }
}

// dxplorectl: client for the dxplored campaign service. All the logic lives
// in src/service/client.cc (shared with `dxplore_cli ctl`); this is the
// standalone binary CI and operators script against.
#include "src/service/client.h"

int main(int argc, char** argv) { return dx::CtlMain(argc - 1, argv + 1); }

// dxplore: command-line driver for the test-generation Session engine.
//
//   dxplore --domain KEY   (any registered domain; see --list-domains)
//           [--metric neuron|kmultisection|topk] [--objective joint|...]
//           [--scheduler roundrobin|coverage-gain] [--workers N]
//           [--constraint NAME]  (per-domain; "default" = domain default)
//           [--seeds N] [--max-tests N] [--lambda1 F] [--lambda2 F]
//           [--step F] [--threshold F] [--iters N] [--target MODEL_IDX]
//           [--rng-seed N] [--out DIR] [--list]
//
// Every axis is a string-keyed registry: domains (src/core/domain.h) bundle
// the dataset, the model trio, the constraint variants, and the Table-2
// defaults; metrics/objectives/schedulers plug into the Session. The CLI
// performs registry lookups only — registering a new domain makes it
// available here with no CLI change.
//
// Loads (or trains+caches) the domain's models, wires a Session from the
// selected coverage metric / objective / seed scheduler, runs it over N
// test-set seeds on the requested number of parallel workers, prints a run
// report, and optionally dumps every difference-inducing image to DIR as
// PGM/PPM.
//
// Durable campaigns: --corpus-dir DIR records every difference-inducing
// input (with provenance), the scheduler journal, and per-batch coverage
// checkpoints; --resume continues an interrupted campaign from its last
// checkpoint (config and seeds come from the corpus manifest, so only
// --corpus-dir is needed); --replay re-executes the recorded campaign and
// verifies bit-identical results (exit 0 verified, 3 diverged). The corpus
// manifest records the domain and constraint *registry keys*, so resume and
// replay reconstruct models and constraints through the registry — a
// manifest whose keys are no longer registered fails with a clear
// "unknown domain 'X'; registered: ..." error (exit 2), never a crash or a
// silent default.
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "src/constraints/constraint.h"
#include "src/core/domain.h"
#include "src/core/executor.h"
#include "src/core/objective.h"
#include "src/core/seed_scheduler.h"
#include "src/core/session.h"
#include "src/corpus/corpus.h"
#include "src/corpus/dedup.h"
#include "src/corpus/distill.h"
#include "src/corpus/minimize.h"
#include "src/coverage/coverage_metric.h"
#include "src/service/client.h"
#include "src/models/trainer.h"
#include "src/models/zoo.h"
#include "src/tensor/simd.h"
#include "src/util/image_io.h"
#include "src/util/table.h"
#include "src/util/thread_pool.h"

namespace {

using namespace dx;

std::string Join(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& name : names) {
    out += (out.empty() ? "" : " | ") + name;
  }
  return out;
}

// ---- Strict numeric flag parsing ---------------------------------------------------------
//
// std::atof/atoi return 0 on garbage, so a typo like `--step 0.O1` used to
// run a full campaign with step=0 instead of failing. Every numeric flag
// goes through these helpers: the whole value must parse (no trailing
// junk), fit the target type, and — for floats — be finite. Anything else
// exits 2 naming the flag and the offending value.

[[noreturn]] void BadFlagValue(const std::string& flag, const char* value,
                               const char* expected) {
  std::cerr << "invalid value for " << flag << ": \"" << value << "\" (expected "
            << expected << ")\n";
  std::exit(2);
}

float ParseFloatFlag(const std::string& flag, const char* value) {
  float out = 0.0f;
  const char* end = value + std::strlen(value);
  const auto [ptr, ec] = std::from_chars(value, end, out);
  if (ec != std::errc{} || ptr != end || !std::isfinite(out)) {
    BadFlagValue(flag, value, "a finite number");
  }
  return out;
}

int64_t ParseInt64Flag(const std::string& flag, const char* value) {
  int64_t out = 0;
  const char* end = value + std::strlen(value);
  const auto [ptr, ec] = std::from_chars(value, end, out, 10);
  if (ec != std::errc{} || ptr != end) {
    BadFlagValue(flag, value, "an integer");
  }
  return out;
}

int ParseIntFlag(const std::string& flag, const char* value) {
  const int64_t out = ParseInt64Flag(flag, value);
  if (out < std::numeric_limits<int>::min() || out > std::numeric_limits<int>::max()) {
    BadFlagValue(flag, value, "a 32-bit integer");
  }
  return static_cast<int>(out);
}

uint64_t ParseUint64Flag(const std::string& flag, const char* value) {
  uint64_t out = 0;
  const char* end = value + std::strlen(value);
  const auto [ptr, ec] = std::from_chars(value, end, out, 10);
  if (ec != std::errc{} || ptr != end) {
    BadFlagValue(flag, value, "an unsigned integer");
  }
  return out;
}

// Build/runtime provenance for perf reports: which SIMD backend the kernels
// were compiled for, and how wide the intra-op pool is on this host.
void PrintVersion() {
  std::cout << "dxplore (DeepXplore reproduction, conf_sosp_PeiCYJ17)\n"
            << "  simd backend: " << SimdBackendName() << " (" << SimdLanes()
            << " float lanes)\n"
            << "  intra-op threads: " << ThreadPool::Global().num_threads()
            << " (DEEPXPLORE_THREADS overrides; host cores: "
            << std::thread::hardware_concurrency() << ")\n";
}

[[noreturn]] void Usage(int code) {
  std::cout <<
      R"(dxplore - whitebox differential testing of the built-in model zoo

  --domain D      )" << Join(DomainKeys()) << R"(  (required)
  --metric M      )" << Join(CoverageMetricNames()) << R"(  (default: neuron)
  --objective O   )" << Join(ObjectiveNames()) << R"(  (default: joint)
  --scheduler S   )" << Join(SeedSchedulerNames()) << R"(  (default: roundrobin)
  --workers N     parallel seed workers; 0 = all cores        (default: 1)
  --batch-size N  seeds per batched-executor chunk            (default: 8)
  --constraint C  per-domain constraint variant; "default" picks the
                  domain's default (--list-domains enumerates them)
  --seeds N       seed inputs drawn from the domain test set  (default: 100)
  --max-tests N   stop after N difference-inducing inputs     (default: all)
  --lambda1 F     Equation 2 balance                          (default: Table 2)
  --lambda2 F     coverage objective weight                   (default: Table 2)
  --step F        gradient-ascent step size                   (default: Table 2)
  --threshold F   neuron activation threshold t               (default: 0)
  --iters N       gradient steps per seed                     (default: 100)
  --target K      force model K as the deviator               (default: random)
  --rng-seed N    engine RNG seed                             (default: 1234)
  --out DIR       write difference-inducing images to DIR
  --corpus-dir D  record the campaign durably into corpus directory D
  --resume        continue the campaign in --corpus-dir from its checkpoint
                  (config + seeds are read from the corpus manifest)
  --replay        re-execute the campaign in --corpus-dir and verify the
                  recorded results bit for bit (exit 0 ok, 3 diverged)
  --max-batches N stop this leg after N sync batches (resumable later)
  --progress N    print a progress line every N sync batches (stderr)
  --profile       print a per-phase wall-time table after the run (stack /
                  forward / backward layers / objective accumulate /
                  constraint / coverage)
  --list          print the model zoo and exit
  --version       print build provenance (SIMD backend, intra-op threads)
  --list-domains     print registered domains (models, constraints) and exit
  --list-metrics     print registered coverage metrics and exit
  --list-objectives  print registered objectives and exit
  --list-schedulers  print registered seed schedulers and exit

Results are deterministic for a fixed --rng-seed, whatever --workers or
--batch-size is.

`dxplore ctl COMMAND ...` drives a running dxplored campaign daemon
(submit/status/list/pause/resume/cancel/results/wait/drain/get; see
`dxplore ctl --help`).

`dxplore corpus stats|distill|dedup|minimize ...` maintains recorded
corpora (see `dxplore corpus --help`).
)";
  std::exit(code);
}

[[noreturn]] void CorpusUsage(int code) {
  std::cout <<
      R"(dxplore corpus - maintenance passes over a recorded corpus

  dxplore corpus stats    --corpus-dir DIR
  dxplore corpus distill  --corpus-dir SRC --out DST
  dxplore corpus dedup    --corpus-dir SRC --out DST [--deduper NAME]
                          [--dedup-threshold F] [--no-preserve-coverage]
  dxplore corpus minimize --corpus-dir SRC --out DST [--regions N] [--rounds N]

  --workers N / --batch-size N apply to every transform (results are
  invariant to both).

stats summarizes the corpus (entries, per-model attribution, on-disk bytes,
checkpoint chain shape) without loading models.

Transforms write a NEW derived corpus to --out (the source is never modified
in place), then verify it with Session::Replay: every retained entry must
re-predict its recorded labels/outputs and still induce disagreement, and
the checkpoint's merged coverage must re-derive bit-identically (exit 0
verified, 3 verification failed). Derived corpora replay but never resume.

  distill   drop entries whose coverage is subsumed by the retained set
            (merged coverage is preserved exactly)
  dedup     drop near-duplicate inputs with the same disagreement signature;
            dedupers: )" << Join(CorpusDeduperNames()) << R"(
            (a duplicate that still covers something new is kept unless
            --no-preserve-coverage)
  minimize  walk each entry's input back toward its seed while the
            disagreement and the corpus' merged coverage survive
)";
  std::exit(code);
}

int CorpusMain(int argc, char** argv) {
  if (argc < 1) {
    CorpusUsage(2);
  }
  const std::string verb = argv[0];
  if (verb == "--help" || verb == "-h") {
    CorpusUsage(0);
  }
  if (verb != "stats" && verb != "distill" && verb != "dedup" && verb != "minimize") {
    std::cerr << "unknown corpus verb \"" << verb << "\"\n";
    CorpusUsage(2);
  }
  std::string corpus_dir;
  std::string out_dir;
  std::string deduper = "auto";
  float dedup_threshold = -1.0f;
  int regions = 16;
  int rounds = 4;
  int workers = 1;
  int batch_size = 8;
  bool preserve_coverage = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        CorpusUsage(2);
      }
      return argv[++i];
    };
    if (arg == "--corpus-dir") corpus_dir = next();
    else if (arg == "--out") out_dir = next();
    else if (arg == "--deduper") deduper = next();
    else if (arg == "--dedup-threshold") dedup_threshold = ParseFloatFlag(arg, next());
    else if (arg == "--regions") regions = ParseIntFlag(arg, next());
    else if (arg == "--rounds") rounds = ParseIntFlag(arg, next());
    else if (arg == "--workers") workers = ParseIntFlag(arg, next());
    else if (arg == "--batch-size") batch_size = ParseIntFlag(arg, next());
    else if (arg == "--no-preserve-coverage") preserve_coverage = false;
    else if (arg == "--help" || arg == "-h") CorpusUsage(0);
    else {
      std::cerr << "unknown flag: " << arg << "\n";
      CorpusUsage(2);
    }
  }
  if (corpus_dir.empty()) {
    std::cerr << "missing --corpus-dir\n";
    return 2;
  }
  Corpus corpus(corpus_dir);
  if (!corpus.initialized()) {
    std::cerr << corpus_dir << " holds no recorded campaign\n";
    return 2;
  }

  if (verb == "stats") {
    const CorpusStats s = corpus.Stats();
    TablePrinter table({"Stat", "Value"});
    table.AddRow({"directory", corpus_dir});
    if (!s.domain.empty()) table.AddRow({"domain", s.domain});
    table.AddRow({"metric", s.metric});
    table.AddRow({"objective", s.objective});
    table.AddRow({"scheduler", s.scheduler});
    if (const std::string* transform = corpus.meta().FindMetadata("transform")) {
      table.AddRow({"transform", *transform});
    }
    table.AddRow({"entries", std::to_string(s.num_entries)});
    const std::vector<std::string>& names = corpus.meta().model_names;
    for (size_t k = 0; k < s.entries_per_model.size(); ++k) {
      table.AddRow({"entries deviating " + (k < names.size() ? names[k] : std::to_string(k)),
                    std::to_string(s.entries_per_model[k])});
    }
    table.AddRow({"seeds", std::to_string(s.num_seeds)});
    table.AddRow({"journal batches", std::to_string(s.journal_batches)});
    table.AddRow({"checkpoint format", s.segmented ? "segmented chain" : "monolithic"});
    table.AddRow({"chain snapshots", std::to_string(s.chain_snapshots)});
    table.AddRow({"chain deltas", std::to_string(s.chain_deltas)});
    table.AddRow({"complete", s.complete ? "yes" : "no (resumable)"});
    table.AddRow({"mean coverage", TablePrinter::Percent(s.mean_coverage)});
    table.AddRow({"manifest bytes", std::to_string(s.manifest_bytes)});
    table.AddRow({"entries bytes", std::to_string(s.entries_bytes)});
    table.AddRow({"journal bytes", std::to_string(s.journal_bytes)});
    table.AddRow({"checkpoint bytes", std::to_string(s.checkpoint_bytes)});
    table.AddRow({"total bytes", std::to_string(s.total_bytes)});
    std::cout << table.ToString();
    return 0;
  }

  if (out_dir.empty()) {
    std::cerr << "missing --out (transforms write a new derived corpus)\n";
    return 2;
  }
  if (!corpus.has_checkpoint()) {
    std::cerr << corpus_dir << " has no checkpoint to transform\n";
    return 2;
  }
  const CorpusMeta& meta = corpus.meta();
  const std::string* stored_domain = meta.FindMetadata("domain");
  const std::string* stored_constraint = meta.FindMetadata("constraint");
  if (stored_domain == nullptr || stored_constraint == nullptr) {
    std::cerr << corpus_dir << ": manifest lacks domain/constraint metadata\n";
    return 2;
  }
  // The same registry-keyed reconstruction --resume/--replay use.
  const DomainSpec& domain = GetDomain(*stored_domain);
  const std::string constraint_key = ResolveDomainConstraint(domain, *stored_constraint);
  std::unique_ptr<Constraint> constraint = MakeDomainConstraint(domain, constraint_key);
  std::cerr << "loading models (trains and caches on first use)...\n";
  std::vector<Model> models = ModelZoo::TrainedDomain(domain.key);
  std::vector<Model*> ptrs;
  for (Model& m : models) {
    ptrs.push_back(&m);
  }
  SessionConfig config;
  config.engine = meta.engine;
  config.metric = meta.metric;
  config.objective = meta.objective;
  config.scheduler = meta.scheduler;
  config.sync_interval = meta.sync_interval;
  config.profile_from_seeds = meta.profile_from_seeds;
  config.workers = workers;
  config.batch_size = batch_size;
  Session session(ptrs, constraint.get(), config);

  MaintenanceReport report;
  if (verb == "distill") {
    DistillOptions options;
    options.out_dir = out_dir;
    report = DistillCorpus(session, corpus, options);
  } else if (verb == "dedup") {
    DedupOptions options;
    options.out_dir = out_dir;
    options.deduper = deduper;
    options.threshold = dedup_threshold;
    options.preserve_coverage = preserve_coverage;
    report = DedupCorpus(session, corpus, options);
  } else {
    MinimizeOptions options;
    options.out_dir = out_dir;
    options.regions = regions;
    options.max_rounds = rounds;
    report = MinimizeCorpus(session, corpus, options);
  }
  std::cout << report.ToString();

  // Every transform is verified end to end before the CLI calls it done.
  Corpus derived(out_dir);
  const ReplayResult verify = session.Replay(derived);
  if (!verify.ok) {
    std::cerr << "verification FAILED: " << verify.mismatch << "\n";
    return 3;
  }
  std::cout << "verified: " << derived.entries().size()
            << " entries replay clean in " << out_dir << "\n";
  return 0;
}

void DumpImage(const std::string& path, const Tensor& img) {
  if (img.ndim() != 3) {
    return;  // Feature-vector domains have no image form.
  }
  const int c = img.dim(0);
  const int h = img.dim(1);
  const int w = img.dim(2);
  if (c != 1 && c != 3) {
    return;
  }
  std::vector<float> hwc(static_cast<size_t>(h) * w * c);
  for (int ch = 0; ch < c; ++ch) {
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        hwc[(static_cast<size_t>(y) * w + x) * c + ch] =
            img[(static_cast<int64_t>(ch) * h + y) * w + x];
      }
    }
  }
  WriteImage(path + (c == 1 ? ".pgm" : ".ppm"), hwc, h, w, c);
}

int Main(int argc, char** argv) {
  std::string domain_name;
  std::string constraint_name = "default";
  std::string metric_name = "neuron";
  std::string objective_name = "joint";
  std::string scheduler_name = "roundrobin";
  std::string out_dir;
  std::string corpus_dir;
  int seeds = 100;
  int max_tests = 1 << 30;
  int iters = 100;
  int target = -1;
  int workers = 1;
  int batch_size = 8;
  int64_t max_batches = -1;
  int64_t progress_every = 0;
  uint64_t rng_seed = 1234;
  float threshold = 0.0f;
  std::optional<float> lambda1;
  std::optional<float> lambda2;
  std::optional<float> step;
  bool list = false;
  bool resume = false;
  bool replay = false;
  bool profile = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(2);
      }
      return argv[++i];
    };
    if (arg == "--domain") domain_name = next();
    else if (arg == "--constraint") constraint_name = next();
    else if (arg == "--metric") metric_name = next();
    else if (arg == "--objective") objective_name = next();
    else if (arg == "--scheduler") scheduler_name = next();
    else if (arg == "--workers") workers = ParseIntFlag(arg, next());
    else if (arg == "--batch-size") batch_size = ParseIntFlag(arg, next());
    else if (arg == "--rng-seed") rng_seed = ParseUint64Flag(arg, next());
    else if (arg == "--seeds") seeds = ParseIntFlag(arg, next());
    else if (arg == "--max-tests") max_tests = ParseIntFlag(arg, next());
    else if (arg == "--lambda1") lambda1 = ParseFloatFlag(arg, next());
    else if (arg == "--lambda2") lambda2 = ParseFloatFlag(arg, next());
    else if (arg == "--step") step = ParseFloatFlag(arg, next());
    else if (arg == "--threshold") threshold = ParseFloatFlag(arg, next());
    else if (arg == "--iters") iters = ParseIntFlag(arg, next());
    else if (arg == "--target") target = ParseIntFlag(arg, next());
    else if (arg == "--out") out_dir = next();
    else if (arg == "--corpus-dir") corpus_dir = next();
    else if (arg == "--resume") resume = true;
    else if (arg == "--replay") replay = true;
    else if (arg == "--max-batches") max_batches = ParseInt64Flag(arg, next());
    else if (arg == "--progress") progress_every = ParseInt64Flag(arg, next());
    else if (arg == "--profile") profile = true;
    else if (arg == "--list") list = true;
    else if (arg == "--list-domains") {
      TablePrinter table({"Key", "Dataset", "Models", "Constraints", "Description"});
      for (const std::string& key : DomainKeys()) {
        const DomainSpec& spec = GetDomain(key);
        std::vector<std::string> constraints;
        for (const std::string& name : DomainConstraintNames(spec)) {
          constraints.push_back(name == spec.default_constraint ? name + "*" : name);
        }
        table.AddRow({spec.key, spec.display_name,
                      std::to_string(spec.models.size()), Join(constraints),
                      spec.description});
      }
      std::cout << table.ToString() << "(* = the domain's default constraint)\n";
      return 0;
    }
    else if (arg == "--list-metrics") {
      for (const std::string& name : CoverageMetricNames()) std::cout << name << "\n";
      return 0;
    }
    else if (arg == "--list-objectives") {
      for (const std::string& name : ObjectiveNames()) std::cout << name << "\n";
      return 0;
    }
    else if (arg == "--list-schedulers") {
      for (const std::string& name : SeedSchedulerNames()) std::cout << name << "\n";
      return 0;
    }
    else if (arg == "--version") {
      PrintVersion();
      return 0;
    }
    else if (arg == "--help" || arg == "-h") Usage(0);
    else {
      std::cerr << "unknown flag: " << arg << "\n";
      Usage(2);
    }
  }

  if (list) {
    TablePrinter table({"Name", "Dataset", "Architecture"});
    for (const ModelInfo& info : ZooModels()) {
      table.AddRow({info.name, DomainName(info.domain), info.arch});
    }
    std::cout << table.ToString();
    return 0;
  }
  if ((resume || replay) && corpus_dir.empty()) {
    std::cerr << "--resume/--replay require --corpus-dir\n";
    return 2;
  }
  if (resume && replay) {
    std::cerr << "--resume and --replay are mutually exclusive\n";
    return 2;
  }
  if (replay && max_batches >= 0) {
    std::cerr << "--max-batches does not apply to --replay (the recorded leg "
                 "boundary is replayed exactly)\n";
    return 2;
  }
  std::unique_ptr<Corpus> corpus;
  if (!corpus_dir.empty()) {
    corpus = std::make_unique<Corpus>(corpus_dir);
    if ((resume || replay) && !corpus->initialized()) {
      std::cerr << corpus_dir << " holds no recorded campaign\n";
      return 2;
    }
    if (!resume && !replay && corpus->initialized()) {
      std::cerr << corpus_dir
                << " already holds a campaign; pass --resume to continue it or "
                   "--replay to verify it\n";
      return 2;
    }
  }
  if (resume || replay) {
    // The corpus manifest is the source of truth for everything that affects
    // results; only --workers / --batch-size / --max-batches apply (results
    // are invariant to them). The stored domain/constraint registry keys are
    // resolved below — through the same registry lookups as fresh runs.
    const CorpusMeta& meta = corpus->meta();
    const std::string* stored_domain = meta.FindMetadata("domain");
    const std::string* stored_constraint = meta.FindMetadata("constraint");
    if (stored_domain == nullptr || stored_constraint == nullptr) {
      std::cerr << corpus_dir << ": manifest lacks domain/constraint metadata\n";
      return 2;
    }
    domain_name = *stored_domain;
    constraint_name = *stored_constraint;
    metric_name = meta.metric;
    objective_name = meta.objective;
    scheduler_name = meta.scheduler;
  }

  if (domain_name.empty()) {
    std::cerr << "missing --domain (registered: " << Join(DomainKeys()) << ")\n";
    return 2;
  }
  const DomainSpec* domain_ptr = nullptr;
  std::unique_ptr<Constraint> constraint;
  std::string constraint_key;
  try {
    // GetDomain's reference is process-lifetime stable; unknown keys throw
    // the "unknown domain ...; registered: ..." listing, unknown constraint
    // names the per-domain "valid: ..." listing.
    domain_ptr = &GetDomain(domain_name);
    constraint_key = ResolveDomainConstraint(*domain_ptr, constraint_name);
    constraint = MakeDomainConstraint(*domain_ptr, constraint_key);
  } catch (const std::invalid_argument& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  const DomainSpec& domain = *domain_ptr;

  std::cerr << "loading models (trains and caches on first use)...\n";
  std::vector<Model> models = ModelZoo::TrainedDomain(domain.key);
  std::vector<Model*> ptrs;
  for (Model& m : models) {
    ptrs.push_back(&m);
  }

  SessionConfig config;
  if (resume || replay) {
    config.engine = corpus->meta().engine;
    config.sync_interval = corpus->meta().sync_interval;
    config.profile_from_seeds = corpus->meta().profile_from_seeds;
  } else {
    config.engine = domain.engine_defaults;
    if (lambda1) config.engine.lambda1 = *lambda1;
    if (lambda2) config.engine.lambda2 = *lambda2;
    if (step) config.engine.step = *step;
    config.engine.coverage.threshold = threshold;
    config.engine.max_iterations_per_seed = iters;
    config.engine.forced_target_model = target;
    config.engine.rng_seed = rng_seed;
  }
  config.metric = metric_name;
  config.objective = objective_name;
  config.scheduler = scheduler_name;
  config.workers = workers;
  config.batch_size = batch_size;
  config.profile_phases = profile;
  std::unique_ptr<Session> engine_ptr;
  try {
    engine_ptr = std::make_unique<Session>(ptrs, constraint.get(), config);
  } catch (const std::invalid_argument& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  Session& engine = *engine_ptr;

  // The corpus is self-contained: in --resume/--replay mode the recorded
  // seed pool and campaign bounds come from the manifest (Session::Replay
  // reads them itself; --max-batches was rejected for --replay above).
  std::vector<Tensor> flag_pool;
  if (!resume && !replay) {
    const Dataset& test = ModelZoo::TestSet(domain.key);
    for (int i = 0; i < seeds; ++i) {
      flag_pool.push_back(test.inputs[static_cast<size_t>(i % test.size())]);
    }
  }
  const std::vector<Tensor>& pool =
      (resume || replay) ? corpus->meta().seeds : flag_pool;
  RunOptions opts;
  if (resume) {
    opts.max_tests = corpus->meta().max_tests;
    opts.max_seed_passes = corpus->meta().max_seed_passes;
    opts.coverage_goal = corpus->meta().coverage_goal;
  } else {
    opts.max_tests = max_tests;
  }
  if (max_batches >= 0) {
    opts.max_sync_batches = max_batches;
  }
  if (progress_every > 0) {
    // Push-based progress (RunOptions::on_batch) — no corpus polling needed.
    opts.on_batch = [progress_every](const RunProgress& p) {
      if (p.batches % static_cast<uint64_t>(progress_every) != 0 && !p.done) {
        return;
      }
      std::cerr << "progress: batches=" << p.batches << " tried=" << p.seeds_tried
                << " tests=" << p.tests_found << " coverage=" << p.mean_coverage
                << " seconds=" << p.seconds << "\n";
    };
  }

  RunStats stats;
  bool replay_ok = true;
  if (replay) {
    ReplayResult result = engine.Replay(*corpus);
    replay_ok = result.ok;
    stats = std::move(result.stats);
    if (result.ok) {
      std::cout << "replay OK: " << stats.tests.size()
                << " difference-inducing inputs reproduced bit-identically\n";
    } else {
      std::cerr << "replay DIVERGED: " << result.mismatch << "\n";
    }
  } else if (corpus != nullptr) {
    if (!corpus->initialized()) {
      // Registry keys, not CLI aliases: "default" was resolved above, so a
      // later resume/replay rebuilds the exact same constraint by key.
      corpus->SetMetadata("domain", domain.key);
      corpus->SetMetadata("constraint", constraint_key);
    }
    stats = engine.Run(pool, opts, corpus.get());
  } else {
    stats = engine.Run(pool, opts);
  }

  if (!out_dir.empty()) {
    std::filesystem::create_directories(out_dir);
    int idx = 0;
    for (const GeneratedTest& t : stats.tests) {
      DumpImage(out_dir + "/diff_" + std::to_string(idx), t.input);
      DumpImage(out_dir + "/seed_" + std::to_string(idx),
                pool[static_cast<size_t>(t.seed_index)]);
      ++idx;
    }
  }

  TablePrinter report({"Metric", "Value"});
  report.AddRow({"domain", domain.display_name + " (" + domain.key + ")"});
  report.AddRow({"constraint", constraint_key == constraint->name()
                                   ? constraint_key
                                   : constraint_key + " (" + constraint->name() + ")"});
  report.AddRow({"coverage metric", metric_name});
  report.AddRow({"objective", objective_name});
  report.AddRow({"scheduler", scheduler_name});
  report.AddRow({"workers", std::to_string(workers)});
  report.AddRow({"batch size", std::to_string(batch_size)});
  report.AddRow({"seeds tried", std::to_string(stats.seeds_tried)});
  report.AddRow({"difference-inducing inputs", std::to_string(stats.tests.size())});
  report.AddRow({"total gradient iterations", std::to_string(stats.total_iterations)});
  report.AddRow({"model forward passes", std::to_string(stats.forward_passes)});
  report.AddRow({"wall time", TablePrinter::Num(stats.seconds, 2) + " s"});
  report.AddRow({"tests / second",
                 TablePrinter::Num(stats.seconds > 0.0
                                       ? static_cast<double>(stats.tests.size()) /
                                             stats.seconds
                                       : 0.0,
                                   2)});
  report.AddRow({"mean coverage", TablePrinter::Percent(stats.mean_coverage)});
  for (int k = 0; k < engine.num_models(); ++k) {
    report.AddRow({"coverage " + models[static_cast<size_t>(k)].name(),
                   TablePrinter::Percent(engine.metric(k).Coverage())});
  }
  std::cout << report.ToString();
  if (profile) {
    // Where the run's wall time went inside the batched executor — makes the
    // execution plan's effect (and any regression) visible without a profiler.
    const ExecutorProfile phases = engine.ExecutorPhases();
    const double total = phases.TotalSeconds();
    TablePrinter prof_table({"Phase", "Seconds", "Share"});
    const auto add = [&](const char* name, double seconds) {
      prof_table.AddRow({name, TablePrinter::Num(seconds, 3),
                         TablePrinter::Percent(total > 0.0 ? seconds / total : 0.0)});
    };
    add("stack", phases.stack_seconds);
    add("forward", phases.forward_seconds);
    add("backward layers", phases.backward_layers_seconds);
    add("objective accumulate", phases.objective_accumulate_seconds);
    add("constraint", phases.constraint_seconds);
    add("coverage", phases.coverage_seconds);
    std::cout << "executor phases (" << phases.iterations << " batched iterations):\n"
              << prof_table.ToString();
  }
  if (!out_dir.empty()) {
    std::cout << "images written to " << out_dir << "/\n";
  }
  if (corpus != nullptr && !replay) {
    const bool complete = corpus->has_checkpoint() && corpus->checkpoint().complete;
    std::cout << "corpus " << (resume ? "resumed" : "recorded") << " in " << corpus_dir
              << " (" << corpus->entries().size() << " entries"
              << (complete ? ", complete" : ", resumable") << ")\n";
  }
  if (replay) {
    return replay_ok ? 0 : 3;
  }
  return stats.tests.empty() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  // `dxplore ctl ...` drives a running dxplored daemon (same commands as the
  // standalone dxplorectl binary).
  if (argc > 1 && std::string(argv[1]) == "ctl") {
    return dx::CtlMain(argc - 2, argv + 2);
  }
  try {
    if (argc > 1 && std::string(argv[1]) == "corpus") {
      return CorpusMain(argc - 2, argv + 2);
    }
    return Main(argc, argv);
  } catch (const std::exception& e) {
    // Corrupt corpora, config mismatches, and I/O failures surface as
    // exceptions; report them as a normal CLI error, not a core dump.
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}

// dxplore: command-line driver for the DeepXplore engine.
//
//   dxplore --domain mnist|imagenet|driving|pdf|drebin
//           [--constraint light|occl|blackout|none|default]
//           [--seeds N] [--max-tests N] [--lambda1 F] [--lambda2 F]
//           [--step F] [--threshold F] [--iters N] [--target MODEL_IDX]
//           [--out DIR] [--list]
//
// Loads (or trains+caches) the domain's three models, runs the joint
// optimization over N test-set seeds, prints a run report, and optionally
// dumps every difference-inducing image to DIR as PGM/PPM.
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "src/constraints/constraint.h"
#include "src/constraints/image_constraints.h"
#include "src/constraints/malware_constraints.h"
#include "src/core/deepxplore.h"
#include "src/models/trainer.h"
#include "src/models/zoo.h"
#include "src/util/image_io.h"
#include "src/util/table.h"

namespace {

using namespace dx;

[[noreturn]] void Usage(int code) {
  std::cout <<
      R"(dxplore - whitebox differential testing of the built-in model zoo

  --domain D      mnist | imagenet | driving | pdf | drebin   (required)
  --constraint C  light | occl | blackout | none | default    (default: default)
  --seeds N       seed inputs drawn from the domain test set  (default: 100)
  --max-tests N   stop after N difference-inducing inputs     (default: all)
  --lambda1 F     Equation 2 balance                          (default: Table 2)
  --lambda2 F     coverage objective weight                   (default: Table 2)
  --step F        gradient-ascent step size                   (default: Table 2)
  --threshold F   neuron activation threshold t               (default: 0)
  --iters N       gradient steps per seed                     (default: 100)
  --target K      force model K as the deviator               (default: random)
  --out DIR       write difference-inducing images to DIR
  --list          print the model zoo and exit
)";
  std::exit(code);
}

std::optional<Domain> ParseDomain(const std::string& name) {
  if (name == "mnist") return Domain::kMnist;
  if (name == "imagenet") return Domain::kImageNet;
  if (name == "driving") return Domain::kDriving;
  if (name == "pdf") return Domain::kPdf;
  if (name == "drebin") return Domain::kDrebin;
  return std::nullopt;
}

std::unique_ptr<Constraint> MakeConstraint(const std::string& name, Domain domain) {
  const bool vision = domain == Domain::kMnist || domain == Domain::kImageNet ||
                      domain == Domain::kDriving;
  if (name == "default") {
    if (domain == Domain::kPdf) return std::make_unique<PdfConstraint>();
    if (domain == Domain::kDrebin) return std::make_unique<DrebinConstraint>();
    return std::make_unique<LightingConstraint>();
  }
  if (!vision && name != "none") {
    std::cerr << "image constraints only apply to vision domains\n";
    std::exit(2);
  }
  if (name == "light") return std::make_unique<LightingConstraint>();
  if (name == "occl") return std::make_unique<OcclusionConstraint>(10, 10);
  if (name == "blackout") return std::make_unique<BlackRectsConstraint>(6, 3);
  if (name == "none") return std::make_unique<UnconstrainedImage>();
  std::cerr << "unknown constraint: " << name << "\n";
  std::exit(2);
}

DeepXploreConfig TableTwoDefaults(Domain domain) {
  DeepXploreConfig config;
  config.coverage.scale_per_layer = false;
  switch (domain) {
    case Domain::kMnist:
      config.lambda1 = 2.0f;
      config.step = 10.0f / 255.0f;
      break;
    case Domain::kImageNet:
    case Domain::kDriving:
      config.lambda1 = 1.0f;
      config.step = 10.0f / 255.0f;
      break;
    case Domain::kPdf:
      config.lambda1 = 2.0f;
      config.step = 0.1f;
      break;
    case Domain::kDrebin:
      config.lambda1 = 1.0f;
      config.lambda2 = 0.5f;
      config.step = 1.0f;
      break;
  }
  return config;
}

void DumpImage(const std::string& path, const Tensor& img) {
  if (img.ndim() != 3) {
    return;  // Feature-vector domains have no image form.
  }
  const int c = img.dim(0);
  const int h = img.dim(1);
  const int w = img.dim(2);
  if (c != 1 && c != 3) {
    return;
  }
  std::vector<float> hwc(static_cast<size_t>(h) * w * c);
  for (int ch = 0; ch < c; ++ch) {
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        hwc[(static_cast<size_t>(y) * w + x) * c + ch] =
            img[(static_cast<int64_t>(ch) * h + y) * w + x];
      }
    }
  }
  WriteImage(path + (c == 1 ? ".pgm" : ".ppm"), hwc, h, w, c);
}

int Main(int argc, char** argv) {
  std::string domain_name;
  std::string constraint_name = "default";
  std::string out_dir;
  int seeds = 100;
  int max_tests = 1 << 30;
  int iters = 100;
  int target = -1;
  float threshold = 0.0f;
  std::optional<float> lambda1;
  std::optional<float> lambda2;
  std::optional<float> step;
  bool list = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(2);
      }
      return argv[++i];
    };
    if (arg == "--domain") domain_name = next();
    else if (arg == "--constraint") constraint_name = next();
    else if (arg == "--seeds") seeds = std::atoi(next());
    else if (arg == "--max-tests") max_tests = std::atoi(next());
    else if (arg == "--lambda1") lambda1 = static_cast<float>(std::atof(next()));
    else if (arg == "--lambda2") lambda2 = static_cast<float>(std::atof(next()));
    else if (arg == "--step") step = static_cast<float>(std::atof(next()));
    else if (arg == "--threshold") threshold = static_cast<float>(std::atof(next()));
    else if (arg == "--iters") iters = std::atoi(next());
    else if (arg == "--target") target = std::atoi(next());
    else if (arg == "--out") out_dir = next();
    else if (arg == "--list") list = true;
    else if (arg == "--help" || arg == "-h") Usage(0);
    else {
      std::cerr << "unknown flag: " << arg << "\n";
      Usage(2);
    }
  }

  if (list) {
    TablePrinter table({"Name", "Dataset", "Architecture"});
    for (const ModelInfo& info : ZooModels()) {
      table.AddRow({info.name, DomainName(info.domain), info.arch});
    }
    std::cout << table.ToString();
    return 0;
  }
  const auto domain = ParseDomain(domain_name);
  if (!domain.has_value()) {
    std::cerr << "missing or unknown --domain\n";
    Usage(2);
  }

  std::cerr << "loading models (trains and caches on first use)...\n";
  std::vector<Model> models = ModelZoo::TrainedDomain(*domain);
  std::vector<Model*> ptrs;
  for (Model& m : models) {
    ptrs.push_back(&m);
  }
  const auto constraint = MakeConstraint(constraint_name, *domain);

  DeepXploreConfig config = TableTwoDefaults(*domain);
  if (lambda1) config.lambda1 = *lambda1;
  if (lambda2) config.lambda2 = *lambda2;
  if (step) config.step = *step;
  config.coverage.threshold = threshold;
  config.max_iterations_per_seed = iters;
  config.forced_target_model = target;
  DeepXplore engine(ptrs, constraint.get(), config);

  const Dataset& test = ModelZoo::TestSet(*domain);
  std::vector<Tensor> pool;
  for (int i = 0; i < seeds; ++i) {
    pool.push_back(test.inputs[static_cast<size_t>(i % test.size())]);
  }
  RunOptions opts;
  opts.max_tests = max_tests;
  const RunStats stats = engine.Run(pool, opts);

  if (!out_dir.empty()) {
    std::filesystem::create_directories(out_dir);
    int idx = 0;
    for (const GeneratedTest& t : stats.tests) {
      DumpImage(out_dir + "/diff_" + std::to_string(idx), t.input);
      DumpImage(out_dir + "/seed_" + std::to_string(idx),
                pool[static_cast<size_t>(t.seed_index)]);
      ++idx;
    }
  }

  TablePrinter report({"Metric", "Value"});
  report.AddRow({"domain", DomainName(*domain)});
  report.AddRow({"constraint", constraint->name()});
  report.AddRow({"seeds tried", std::to_string(stats.seeds_tried)});
  report.AddRow({"difference-inducing inputs", std::to_string(stats.tests.size())});
  report.AddRow({"total gradient iterations", std::to_string(stats.total_iterations)});
  report.AddRow({"wall time", TablePrinter::Num(stats.seconds, 2) + " s"});
  report.AddRow({"mean neuron coverage", TablePrinter::Percent(stats.mean_coverage)});
  for (int k = 0; k < engine.num_models(); ++k) {
    report.AddRow({"coverage " + models[static_cast<size_t>(k)].name(),
                   TablePrinter::Percent(engine.tracker(k).Coverage())});
  }
  std::cout << report.ToString();
  if (!out_dir.empty()) {
    std::cout << "images written to " << out_dir << "/\n";
  }
  return stats.tests.empty() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }

#!/usr/bin/env bash
# Tier-1 verify sequence: configure, build, ctest, smoke benches.
#
# Usage: tools/ci.sh [build-dir] [mode]   (default: build "")
#
#   mode "sanitize": build with ASan + UBSan (halt on any report) and run
#   ctest only — the smoke benches are skipped, sanitized models train too
#   slowly for them.
#
# DEEPXPLORE_FAST=1 is exported so the model zoo trains at CI scale; the
# trained-model disk cache makes repeat runs fast.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
MODE="${2:-}"
export DEEPXPLORE_FAST=1

CMAKE_EXTRA=()
if [ "$MODE" = "sanitize" ]; then
  # The trained-model disk cache is shared with regular runs (weights are
  # bit-identical either way), so the sanitized job spends its time on the
  # engine, not on re-training the zoo under ASan.
  CMAKE_EXTRA+=(-DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer")
fi

echo "==> configure ($BUILD_DIR${MODE:+, $MODE})"
# The guarded expansion keeps bash < 4.4 (set -u) happy when the array is empty.
cmake -B "$BUILD_DIR" -S . ${CMAKE_EXTRA[@]+"${CMAKE_EXTRA[@]}"}

echo "==> build"
cmake --build "$BUILD_DIR" -j "$(nproc)"

echo "==> ctest"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

if [ "$MODE" = "sanitize" ]; then
  echo "==> OK (sanitize)"
  exit 0
fi

echo "==> smoke: micro_nn"
if [ -x "$BUILD_DIR/micro_nn" ]; then
  "$BUILD_DIR/micro_nn" --benchmark_min_time=0.01s
else
  echo "micro_nn not built (Google Benchmark not found); skipping"
fi

echo "==> smoke: session scaling bench"
DEEPXPLORE_ARTIFACT_DIR="$BUILD_DIR/bench_artifacts" \
  "$BUILD_DIR/bench_session_scaling" --seeds 10

echo "==> smoke: batched forward bench"
DEEPXPLORE_ARTIFACT_DIR="$BUILD_DIR/bench_artifacts" \
  "$BUILD_DIR/bench_batch_forward"

echo "==> OK"

#!/usr/bin/env bash
# Tier-1 verify sequence: configure, build, ctest, smoke benches.
#
# Usage: tools/ci.sh [build-dir]   (default: build)
#
# DEEPXPLORE_FAST=1 is exported so the model zoo trains at CI scale; the
# trained-model disk cache makes repeat runs fast.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
export DEEPXPLORE_FAST=1

echo "==> configure"
cmake -B "$BUILD_DIR" -S .

echo "==> build"
cmake --build "$BUILD_DIR" -j "$(nproc)"

echo "==> ctest"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "==> smoke: micro_nn"
if [ -x "$BUILD_DIR/micro_nn" ]; then
  "$BUILD_DIR/micro_nn" --benchmark_min_time=0.01s
else
  echo "micro_nn not built (Google Benchmark not found); skipping"
fi

echo "==> smoke: session scaling bench"
DEEPXPLORE_ARTIFACT_DIR="$BUILD_DIR/bench_artifacts" \
  "$BUILD_DIR/bench_session_scaling" --seeds 10

echo "==> OK"

#!/usr/bin/env bash
# Tier-1 verify sequence: configure, build, ctest, smoke benches.
#
# Usage: tools/ci.sh [build-dir] [mode]   (default: build "")
#
#   mode "sanitize": build with ASan + UBSan (halt on any report) and run
#   ctest only — the smoke benches are skipped, sanitized models train too
#   slowly for them.
#
#   mode "tsan": build with ThreadSanitizer and run the multi-worker /
#   corpus test subset — the tests whose Sessions run parallel workers over
#   shared coverage trackers, which is exactly the surface a data race
#   would corrupt.
#
#   mode "release": build all three benches with CMAKE_BUILD_TYPE=Release,
#   run each once as a smoke test (the plan bench's inline tolerance checks
#   keep the GEMM/SIMD path honest where asserts vanish), compare the
#   artifacts against bench/baselines with compare_baselines.py --strict
#   (files recorded on a different host core count are skipped, not
#   failed), and consolidate every artifact into BENCH_results.json at the
#   repo root.
#
#   mode "simd-off": configure with -DDX_SIMD=OFF (scalar kernel fallback —
#   the build any non-AVX2/NEON host gets) and run ctest. Guards the
#   portability path: the scalar GemmBias/std::fma kernels must pass the
#   same suite, including the SIMD-vs-scalar tolerance sweeps, which become
#   self-comparisons there.
#
#   mode "service-smoke": build the campaign daemon + client and drive the
#   full lifecycle end to end over real sockets: start dxplored on ephemeral
#   ports, submit an mnist campaign via dxplorectl, poll /health and
#   /metrics, pause/resume mid-flight, drain the daemon mid-campaign
#   (must exit 0 with every campaign checkpointed), restart, resume the
#   campaign from its corpus, wait for DONE, then `dxplore --replay` the
#   corpus to prove the daemon-driven run is bit-identical on re-execution.
#
#   mode "corpus-maintenance": build the CLI + daemon + client, record a
#   pdf-domain corpus, run the distill -> dedup -> minimize chain via the
#   `dxplore corpus` verbs (every stage replay-verifies its derived corpus
#   or exits nonzero), check `dxplore corpus stats` on both ends, then run
#   a daemon campaign and compact its corpus through the `compact` ctl
#   request, asserting the verified result and the /metrics families.
#
# ctest writes a JUnit report to <build-dir>/ctest-junit.xml and a
# slowest-first per-test timing table is printed after every run, so slow
# tests are visible before they become the long pole.
#
# DEEPXPLORE_FAST=1 is exported so the model zoo trains at CI scale; the
# trained-model disk cache makes repeat runs fast.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
MODE="${2:-}"
export DEEPXPLORE_FAST=1

CMAKE_EXTRA=()
if [ "$MODE" = "sanitize" ]; then
  # The trained-model disk cache is shared with regular runs (weights are
  # bit-identical either way), so the sanitized job spends its time on the
  # engine, not on re-training the zoo under ASan.
  CMAKE_EXTRA+=(-DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer")
elif [ "$MODE" = "tsan" ]; then
  CMAKE_EXTRA+=(-DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer")
elif [ "$MODE" = "release" ]; then
  CMAKE_EXTRA+=(-DCMAKE_BUILD_TYPE=Release)
elif [ "$MODE" = "simd-off" ]; then
  CMAKE_EXTRA+=(-DDX_SIMD=OFF)
fi

echo "==> configure ($BUILD_DIR${MODE:+, $MODE})"
# The guarded expansion keeps bash < 4.4 (set -u) happy when the array is empty.
cmake -B "$BUILD_DIR" -S . ${CMAKE_EXTRA[@]+"${CMAKE_EXTRA[@]}"}

if [ "$MODE" = "release" ]; then
  echo "==> build (Release: bench suite)"
  cmake --build "$BUILD_DIR" -j "$(nproc)" \
    --target bench_plan_steady_state bench_batch_forward bench_session_scaling
  ARTIFACTS="$BUILD_DIR/bench_artifacts"
  echo "==> smoke: plan steady-state bench (Release)"
  DEEPXPLORE_ARTIFACT_DIR="$ARTIFACTS" "$BUILD_DIR/bench_plan_steady_state"
  echo "==> smoke: batched forward bench (Release)"
  DEEPXPLORE_ARTIFACT_DIR="$ARTIFACTS" "$BUILD_DIR/bench_batch_forward"
  echo "==> smoke: session scaling bench (Release)"
  DEEPXPLORE_ARTIFACT_DIR="$ARTIFACTS" "$BUILD_DIR/bench_session_scaling" --seeds 10
  echo "==> baseline vs current comparison (strict)"
  if command -v python3 > /dev/null; then
    python3 tools/compare_baselines.py --strict bench/baselines "$ARTIFACTS"
    echo "==> consolidated bench results -> BENCH_results.json"
    python3 - "$ARTIFACTS" << 'EOF'
import json, os, sys
artifacts = sys.argv[1]
merged = {}
for name in sorted(os.listdir(artifacts)):
    if name.endswith(".json"):
        with open(os.path.join(artifacts, name)) as f:
            merged[name[: -len(".json")]] = json.load(f)
with open("BENCH_results.json", "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
print(f"BENCH_results.json: {', '.join(merged)}")
EOF
  else
    echo "python3 not found; skipping strict comparison + consolidation"
  fi
  echo "==> OK (release)"
  exit 0
fi

if [ "$MODE" = "service-smoke" ]; then
  echo "==> build (service smoke: daemon + client + CLI)"
  # dxplore_cli is the target; `dxplore` is only its OUTPUT_NAME.
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target dxplored dxplorectl dxplore_cli

  SVC_DIR="$BUILD_DIR/service_smoke"
  rm -rf "$SVC_DIR"
  mkdir -p "$SVC_DIR"
  SVC_CORPUS="$SVC_DIR/corpus"
  DAEMON_LOG="$SVC_DIR/dxplored.log"
  DAEMON_PID=""

  cleanup_daemon() {
    if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2> /dev/null; then
      kill "$DAEMON_PID" 2> /dev/null || true
      wait "$DAEMON_PID" 2> /dev/null || true
    fi
  }
  trap cleanup_daemon EXIT

  # Start dxplored on ephemeral ports and parse the bound ports from its
  # "dxplored listening ctl=P http=P" banner (port 0 avoids collisions with
  # anything else on the CI host).
  start_daemon() {
    : > "$DAEMON_LOG"
    "$BUILD_DIR/dxplored" --port 0 --http-port 0 --campaign-workers 2 \
      >> "$DAEMON_LOG" 2>&1 &
    DAEMON_PID=$!
    for _ in $(seq 1 100); do
      grep -q "dxplored listening" "$DAEMON_LOG" && break
      sleep 0.1
    done
    CTL_PORT=$(sed -n 's/.*ctl=\([0-9]*\).*/\1/p' "$DAEMON_LOG" | tail -1)
    HTTP_PORT=$(sed -n 's/.*http=\([0-9]*\).*/\1/p' "$DAEMON_LOG" | tail -1)
    if [ -z "$CTL_PORT" ] || [ -z "$HTTP_PORT" ]; then
      echo "==> FAILED (dxplored did not report its ports)"
      cat "$DAEMON_LOG"
      exit 1
    fi
  }

  ctl() {
    "$BUILD_DIR/dxplorectl" --port "$CTL_PORT" --http-port "$HTTP_PORT" "$@"
  }

  # Poll `status ID` until the campaign reaches STATE (pause/cancel apply at
  # the next batch boundary, so state changes are asynchronous).
  wait_state() {
    local id="$1" state="$2"
    for _ in $(seq 1 200); do
      if ctl status "$id" | grep -q "\"state\":\"$state\""; then
        return 0
      fi
      sleep 0.1
    done
    echo "==> FAILED (campaign $id never reached $state)"
    ctl status "$id" || true
    exit 1
  }

  echo "==> service smoke: start dxplored"
  start_daemon
  echo "    ctl=$CTL_PORT http=$HTTP_PORT"
  ctl ping > /dev/null
  ctl get /health | grep -q '"status":"ok"'

  echo "==> service smoke: submit mnist campaign"
  # Sized so the campaign runs for many sync batches (pause and drain below
  # must land mid-flight, never racing completion) but still finishes in
  # seconds once resumed to completion.
  SUBMIT=$(ctl submit domain=mnist seeds=16 max_seed_passes=12 \
    max_iterations_per_seed=150 batch_size=4 sync_interval=4 \
    corpus_dir="$SVC_CORPUS")
  echo "    $SUBMIT"
  CAMPAIGN_ID=$(echo "$SUBMIT" | sed -n 's/.*"id":\([0-9]*\).*/\1/p')
  [ -n "$CAMPAIGN_ID" ]
  wait_state "$CAMPAIGN_ID" RUNNING

  echo "==> service smoke: pause / resume"
  ctl pause "$CAMPAIGN_ID" > /dev/null
  wait_state "$CAMPAIGN_ID" PAUSED
  ctl resume "$CAMPAIGN_ID" > /dev/null
  wait_state "$CAMPAIGN_ID" RUNNING

  echo "==> service smoke: /health + /metrics while running"
  ctl get /health | grep -q '"running":'
  METRICS=$(ctl get /metrics)
  for family in dxplored_uptime_seconds dxplored_ctl_requests_total \
    dxplored_campaigns_submitted_total dxplored_campaign_tests_total \
    dxplored_campaign_coverage_ratio dxplored_executor_phase_seconds; do
    if ! echo "$METRICS" | grep -q "^$family"; then
      echo "==> FAILED (/metrics missing family $family)"
      echo "$METRICS"
      exit 1
    fi
  done

  echo "==> service smoke: drain mid-campaign (checkpoint + exit 0)"
  "$BUILD_DIR/dxplored" --drain --port "$CTL_PORT" > /dev/null
  DRAIN_RC=0
  wait "$DAEMON_PID" || DRAIN_RC=$?
  DAEMON_PID=""
  if [ "$DRAIN_RC" -ne 0 ]; then
    echo "==> FAILED (dxplored exited $DRAIN_RC on drain)"
    cat "$DAEMON_LOG"
    exit 1
  fi

  echo "==> service smoke: restart + resume campaign from its corpus"
  start_daemon
  echo "    ctl=$CTL_PORT http=$HTTP_PORT"
  RESUBMIT=$(ctl submit corpus_dir="$SVC_CORPUS" resume=true)
  echo "    $RESUBMIT"
  RESUMED_ID=$(echo "$RESUBMIT" | sed -n 's/.*"id":\([0-9]*\).*/\1/p')
  [ -n "$RESUMED_ID" ]
  ctl wait "$RESUMED_ID" --timeout-seconds 300 > /dev/null
  ctl results "$RESUMED_ID" | grep -q '"ok":true'
  ctl get /metrics | grep -q 'state="DONE"'

  echo "==> service smoke: drain idle daemon"
  "$BUILD_DIR/dxplored" --drain --port "$CTL_PORT" > /dev/null
  wait "$DAEMON_PID"
  DAEMON_PID=""

  echo "==> service smoke: replay the daemon-recorded corpus bit for bit"
  "$BUILD_DIR/dxplore" --replay --corpus-dir "$SVC_CORPUS"

  echo "==> OK (service-smoke)"
  exit 0
fi

if [ "$MODE" = "corpus-maintenance" ]; then
  echo "==> build (corpus maintenance smoke: CLI + daemon + client)"
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target dxplore_cli dxplored dxplorectl

  CM_DIR="$BUILD_DIR/corpus_maintenance_smoke"
  rm -rf "$CM_DIR"
  mkdir -p "$CM_DIR"
  SRC_CORPUS="$CM_DIR/corpus"

  echo "==> corpus maintenance: record a pdf campaign"
  "$BUILD_DIR/dxplore" --domain pdf --seeds 60 --iters 20 \
    --corpus-dir "$SRC_CORPUS" > /dev/null
  "$BUILD_DIR/dxplore" corpus stats --corpus-dir "$SRC_CORPUS"

  echo "==> corpus maintenance: distill -> dedup -> minimize (each stage replay-verified)"
  # Each verb re-verifies its derived corpus via Session::Replay and exits
  # nonzero on any mismatch, so plain set -e is the assertion here.
  "$BUILD_DIR/dxplore" corpus distill --corpus-dir "$SRC_CORPUS" \
    --out "$CM_DIR/distilled"
  "$BUILD_DIR/dxplore" corpus dedup --corpus-dir "$CM_DIR/distilled" \
    --out "$CM_DIR/deduped"
  "$BUILD_DIR/dxplore" corpus minimize --corpus-dir "$CM_DIR/deduped" \
    --out "$CM_DIR/minimized" --regions 8 --rounds 2
  "$BUILD_DIR/dxplore" corpus stats --corpus-dir "$CM_DIR/minimized" \
    | grep -q "distill+dedup+minimize"

  echo "==> corpus maintenance: daemon compact request"
  DAEMON_LOG="$CM_DIR/dxplored.log"
  "$BUILD_DIR/dxplored" --port 0 --http-port 0 --campaign-workers 2 \
    > "$DAEMON_LOG" 2>&1 &
  DAEMON_PID=$!
  trap 'kill "$DAEMON_PID" 2> /dev/null || true' EXIT
  for _ in $(seq 1 100); do
    grep -q "dxplored listening" "$DAEMON_LOG" && break
    sleep 0.1
  done
  CTL_PORT=$(sed -n 's/.*ctl=\([0-9]*\).*/\1/p' "$DAEMON_LOG" | tail -1)
  HTTP_PORT=$(sed -n 's/.*http=\([0-9]*\).*/\1/p' "$DAEMON_LOG" | tail -1)
  if [ -z "$CTL_PORT" ] || [ -z "$HTTP_PORT" ]; then
    echo "==> FAILED (dxplored did not report its ports)"
    cat "$DAEMON_LOG"
    exit 1
  fi
  ctl() {
    "$BUILD_DIR/dxplorectl" --port "$CTL_PORT" --http-port "$HTTP_PORT" "$@"
  }

  SUBMIT=$(ctl submit domain=pdf seeds=40 max_seed_passes=1 \
    corpus_dir="$CM_DIR/daemon_corpus")
  echo "    $SUBMIT"
  CAMPAIGN_ID=$(echo "$SUBMIT" | sed -n 's/.*"id":\([0-9]*\).*/\1/p')
  [ -n "$CAMPAIGN_ID" ]
  ctl wait "$CAMPAIGN_ID" --timeout-seconds 300 > /dev/null

  COMPACT=$(ctl compact "$CAMPAIGN_ID" out_dir="$CM_DIR/daemon_compacted" \
    minimize=true)
  echo "    $COMPACT"
  echo "$COMPACT" | grep -q '"verified":true'
  METRICS=$(ctl get /metrics)
  for family in dxplored_compactions_total dxplored_compaction_seconds \
    dxplored_corpus_entries dxplored_corpus_checkpoint_records; do
    if ! echo "$METRICS" | grep -q "^$family"; then
      echo "==> FAILED (/metrics missing family $family)"
      echo "$METRICS"
      exit 1
    fi
  done
  "$BUILD_DIR/dxplore" corpus stats --corpus-dir "$CM_DIR/daemon_compacted"

  "$BUILD_DIR/dxplored" --drain --port "$CTL_PORT" > /dev/null
  wait "$DAEMON_PID"
  DAEMON_PID=""

  echo "==> OK (corpus-maintenance)"
  exit 0
fi

echo "==> build"
cmake --build "$BUILD_DIR" -j "$(nproc)"

CTEST_ARGS=(--output-on-failure -j "$(nproc)")
if ctest --help | grep -q -- --output-junit; then
  CTEST_ARGS+=(--output-junit ctest-junit.xml)
fi
if [ "$MODE" = "tsan" ]; then
  # Multi-worker Sessions + corpus resume are the race-prone surface; the
  # rest of the suite is single-threaded and would only slow TSan down.
  CTEST_ARGS+=(-R 'session_test|batch_exec_test|corpus_test|corpus_maintenance_test|util_test')
fi

echo "==> ctest"
CTEST_LOG="$BUILD_DIR/ctest-run.log"
CTEST_RC=0
ctest --test-dir "$BUILD_DIR" "${CTEST_ARGS[@]}" | tee "$CTEST_LOG" || CTEST_RC=$?

echo "==> per-test timing (slowest first)"
# `|| true`: a log with no test lines (ctest died before running any) must
# not let set -e eat the FAILED branch below.
grep -E 'Test +#[0-9]+:' "$CTEST_LOG" \
  | sed -E 's/.*Test +#[0-9]+: +([a-zA-Z0-9_]+) .* ([0-9.]+) sec.*/\2 \1/' \
  | sort -rn | head -10 | awk '{printf "  %8.2f s  %s\n", $1, $2}' || true

if [ "$CTEST_RC" -ne 0 ]; then
  echo "==> FAILED (ctest exit $CTEST_RC)"
  exit "$CTEST_RC"
fi

if [ "$MODE" = "sanitize" ] || [ "$MODE" = "tsan" ] || [ "$MODE" = "simd-off" ]; then
  echo "==> OK ($MODE)"
  exit 0
fi

echo "==> smoke: domain registry (--list-domains must include the out-of-paper domains)"
"$BUILD_DIR/dxplore" --list-domains
for domain in speech tabular; do
  if ! "$BUILD_DIR/dxplore" --list-domains | grep -q "^| $domain"; then
    echo "==> FAILED (--list-domains does not list '$domain')"
    exit 1
  fi
done
# The domain-conformance certification suite already ran under ctest above
# (domain_conformance_test covers every registered domain); the greps here
# only guard the CLI registry surface.

echo "==> smoke: malformed numeric flags exit 2 naming the flag"
for bad in "--step 0.O1" "--lambda1 1e" "--seeds 5x" "--rng-seed -3" \
  "--threshold nan" "--dedup-threshold x"; do
  flag="${bad%% *}"
  RC=0
  if [ "$flag" = "--dedup-threshold" ]; then
    OUT=$("$BUILD_DIR/dxplore" corpus dedup --corpus-dir /nonexistent \
      --out /nonexistent2 $bad 2>&1) || RC=$?
  else
    OUT=$("$BUILD_DIR/dxplore" --domain mnist $bad 2>&1) || RC=$?
  fi
  if [ "$RC" -ne 2 ] || ! echo "$OUT" | grep -q "invalid value for $flag"; then
    echo "==> FAILED ('dxplore $bad' exited $RC; want exit 2 naming $flag)"
    echo "$OUT"
    exit 1
  fi
done
echo "    all malformed values rejected with exit 2"

echo "==> smoke: --version reports the SIMD backend"
"$BUILD_DIR/dxplore" --version
"$BUILD_DIR/dxplore" --version | grep -q "simd backend:"

echo "==> smoke: micro_nn"
if [ -x "$BUILD_DIR/micro_nn" ]; then
  "$BUILD_DIR/micro_nn" --benchmark_min_time=0.01s
else
  echo "micro_nn not built (Google Benchmark not found); skipping"
fi

echo "==> smoke: session scaling bench"
DEEPXPLORE_ARTIFACT_DIR="$BUILD_DIR/bench_artifacts" \
  "$BUILD_DIR/bench_session_scaling" --seeds 10

echo "==> smoke: batched forward bench"
DEEPXPLORE_ARTIFACT_DIR="$BUILD_DIR/bench_artifacts" \
  "$BUILD_DIR/bench_batch_forward"

echo "==> smoke: plan steady-state bench"
DEEPXPLORE_ARTIFACT_DIR="$BUILD_DIR/bench_artifacts" \
  "$BUILD_DIR/bench_plan_steady_state"

echo "==> baseline vs current comparison (informational)"
if command -v python3 > /dev/null; then
  python3 tools/compare_baselines.py bench/baselines "$BUILD_DIR/bench_artifacts" || true
else
  echo "python3 not found; skipping comparison"
fi

echo "==> smoke: corpus record + resume + replay (paper domain: pdf)"
CORPUS_DIR="$BUILD_DIR/smoke_corpus"
rm -rf "$CORPUS_DIR"
"$BUILD_DIR/dxplore" --domain pdf --seeds 60 --iters 20 \
  --corpus-dir "$CORPUS_DIR" --max-batches 1 > /dev/null
"$BUILD_DIR/dxplore" --resume --corpus-dir "$CORPUS_DIR" --workers 2 > /dev/null
"$BUILD_DIR/dxplore" --replay --corpus-dir "$CORPUS_DIR"

echo "==> smoke: corpus record + replay on an out-of-paper registry domain (speech)"
SPEECH_CORPUS_DIR="$BUILD_DIR/smoke_corpus_speech"
rm -rf "$SPEECH_CORPUS_DIR"
"$BUILD_DIR/dxplore" --domain speech --seeds 40 --iters 20 \
  --corpus-dir "$SPEECH_CORPUS_DIR" > /dev/null
"$BUILD_DIR/dxplore" --replay --corpus-dir "$SPEECH_CORPUS_DIR"

echo "==> OK"

#!/usr/bin/env python3
"""Compare checked-in bench baselines against freshly recorded artifacts.

Usage: compare_baselines.py [--strict] BASELINE_DIR CURRENT_DIR

For every BASELINE_DIR/*.json with a same-named file in CURRENT_DIR, rows are
matched positionally (both sides are emitted deterministically by the bench
binaries) and every throughput field (*_per_sec) is compared. Rows whose
current throughput is more than 10% below the baseline are flagged.

By default this is informational only and always exits 0: CI hosts vary
wildly (the recorded baselines name their host_cores), so a flag here is a
prompt to look, not a failure. With --strict, flagged regressions make the
script exit 1 — for reference hosts where the comparison IS
apples-to-apples. Re-record baselines on the reference host with the bench
binaries (each writes <artifact dir>/<bench>.json; copy into
bench/baselines/).
"""

import json
import os
import sys

REGRESSION_THRESHOLD = -0.10


MEASUREMENT_FIELDS = ("seconds", "speedup", "mean_coverage", "tests")


def row_key(row):
    return "/".join(
        str(row[k])
        for k in sorted(row)
        if not k.endswith("_per_sec") and k not in MEASUREMENT_FIELDS
    )


def main():
    args = sys.argv[1:]
    strict = "--strict" in args
    if strict:
        args = [a for a in args if a != "--strict"]
    if len(args) != 2:
        print(__doc__)
        return 0
    baseline_dir, current_dir = args
    flagged = 0
    compared = 0
    core_warnings = 0
    lines = []
    for name in sorted(os.listdir(baseline_dir)):
        if not name.endswith(".json"):
            continue
        current_path = os.path.join(current_dir, name)
        if not os.path.exists(current_path):
            lines.append(f"  {name}: no current artifact (bench not run); skipped")
            continue
        try:
            with open(os.path.join(baseline_dir, name)) as f:
                base = json.load(f)
            with open(current_path) as f:
                cur = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            lines.append(f"  {name}: unreadable ({e}); skipped")
            continue
        base_cores = base.get("host_cores", "?")
        cur_cores = cur.get("host_cores", "?")
        lines.append(
            f"  {name} (baseline host_cores={base_cores}, current={cur_cores}):"
        )
        if base_cores != cur_cores:
            # Throughput on an N-core host is not comparable to a baseline
            # recorded on an M-core host; don't let the numbers below read as
            # apples-to-apples. Warn loudly. In strict mode the file is
            # skipped outright — a mismatched host must neither fail the job
            # on phantom regressions nor pass it on phantom wins.
            core_warnings += 1
            lines.append(
                f"    WARNING: host core count differs (baseline {base_cores} "
                f"vs current {cur_cores}); throughput deltas are not "
                f"apples-to-apples — re-record on the reference host"
            )
            if strict:
                lines.append("    skipped in --strict mode (host mismatch)")
                continue
        # Match rows by key, not position: a bench that adds/reorders rows
        # must not pair unrelated measurements.
        current_rows = {row_key(r): r for r in cur.get("rows", [])}
        for brow in base.get("rows", []):
            crow = current_rows.get(row_key(brow))
            if crow is None:
                lines.append(f"    {row_key(brow):<40} not in current artifact; skipped")
                continue
            for field in sorted(brow):
                if not field.endswith("_per_sec"):
                    continue
                bval, cval = brow.get(field), crow.get(field)
                if not bval or not isinstance(cval, (int, float)):
                    continue
                delta = (cval - bval) / bval
                compared += 1
                mark = ""
                if delta < REGRESSION_THRESHOLD:
                    mark = "  <-- REGRESSION (>10% below baseline)"
                    flagged += 1
                lines.append(
                    f"    {row_key(brow):<40} {field:<28} "
                    f"{bval:>12.1f} -> {cval:>12.1f}  ({delta:+.1%}){mark}"
                )
    print("baseline vs current bench throughput:")
    for line in lines:
        print(line)
    mode = (
        "strict: flagged regressions fail"
        if strict
        else "informational; hosts differ — see bench/baselines/"
    )
    print(
        f"{compared} measurements compared, {flagged} flagged, "
        f"{core_warnings} host-core-count warnings ({mode})"
    )
    return 1 if strict and flagged > 0 else 0


if __name__ == "__main__":
    sys.exit(main())

// Table 12: "Changes in the number of iterations DeepXplore takes, on
// average, to find the first difference inducing inputs as the type and
// numbers of differences between the test DNNs increase."
//
// Control: LeNet-1 trained on the full digit training set. Variants differ in
// (1) how many training samples were removed, (2) how many extra filters each
// conv layer has, (3) how many extra training epochs were run. The paper's
// deltas are scaled to our training set (1500 samples vs the paper's 60000);
// a '-' marks timeout, as in the paper.
#include <iostream>

#include "bench/bench_common.h"
#include "src/constraints/constraint.h"
#include "src/models/trainer.h"
#include "src/util/table.h"

namespace dx {
namespace {

constexpr int kTimeoutIterations = 1000;
constexpr uint64_t kInitSeed = 4242;

Model TrainLenet1Variant(const Dataset& train, int drop_samples, int extra_filters,
                         int extra_epochs) {
  Model model = ModelZoo::BuildCustomLenet1(4 + extra_filters, 12 + extra_filters,
                                            kInitSeed + static_cast<uint64_t>(extra_filters));
  Dataset subset = train;
  if (drop_samples > 0) {
    subset.inputs.resize(static_cast<size_t>(train.size() - drop_samples));
    subset.targets.resize(static_cast<size_t>(train.size() - drop_samples));
  }
  TrainConfig cfg;
  cfg.epochs = 8 + extra_epochs;
  cfg.learning_rate = 3e-3f;
  cfg.seed = 99;       // Identical optimizer stream: a zero-delta variant is the control.
  cfg.shuffle = false;  // Sequential batches keep divergence graded in the delta.
  Trainer::Fit(&model, subset, cfg);
  return model;
}

// Average iterations to the first difference between `control` and `variant`
// over `seeds` seeds; returns -1 when every seed timed out.
double AvgIterations(Model& control, Model& variant, const std::vector<Tensor>& pool,
                     int seeds) {
  // Unconstrained per-pixel search: near-identical models disagree only in
  // tiny input regions that the rigid lighting transform cannot reach.
  static const UnconstrainedImage constraint_obj;
  const Constraint* constraint = &constraint_obj;
  DeepXploreConfig config = bench::DefaultConfig(Domain::kMnist);
  config.step = 2.0f / 255.0f;
  config.max_iterations_per_seed = kTimeoutIterations;
  config.forced_target_model = 1;  // Push the variant away from the control.
  config.rng_seed = 903;
  DeepXplore engine({&control, &variant}, constraint, config);
  int64_t total = 0;
  int found = 0;
  for (int i = 0; i < seeds; ++i) {
    const auto test = engine.GenerateFromSeed(pool[static_cast<size_t>(i)], i);
    if (test.has_value()) {
      total += test->iterations;
      ++found;
    } else {
      total += kTimeoutIterations;
    }
  }
  if (found == 0) {
    return -1.0;
  }
  return static_cast<double>(total) / seeds;
}

std::string Cell(double avg) {
  return avg < 0 ? "-*" : TablePrinter::Num(avg, 1);
}

int Run(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  args.seeds = std::min(args.seeds, 12);  // Timeout rows cost 1000 iters/seed.
  bench::PrintHeader("Table 12", "iterations to first difference vs model similarity",
                     args);
  const Dataset& train = ModelZoo::TrainSet(Domain::kMnist);
  const std::vector<Tensor> pool = bench::SeedPool(Domain::kMnist, args.seeds);

  Model control = TrainLenet1Variant(train, 0, 0, 0);

  {
    TablePrinter table({"Training samples removed", "0", "1", "25", "100", "375"});
    std::vector<std::string> row = {"# iterations"};
    for (const int drop : {0, 1, 25, 100, 375}) {
      Model variant = TrainLenet1Variant(train, drop, 0, 0);
      row.push_back(Cell(AvgIterations(control, variant, pool, args.seeds)));
    }
    table.AddRow(std::move(row));
    std::cout << table.ToString();
  }
  {
    TablePrinter table({"Extra filters per conv layer", "0", "1", "2", "3", "4"});
    std::vector<std::string> row = {"# iterations"};
    for (const int filters : {0, 1, 2, 3, 4}) {
      Model variant = TrainLenet1Variant(train, 0, filters, 0);
      row.push_back(Cell(AvgIterations(control, variant, pool, args.seeds)));
    }
    table.AddRow(std::move(row));
    std::cout << table.ToString();
  }
  {
    TablePrinter table({"Extra training epochs", "0", "2", "4", "8", "16"});
    std::vector<std::string> row = {"# iterations"};
    for (const int epochs : {0, 2, 4, 8, 16}) {
      Model variant = TrainLenet1Variant(train, 0, 0, epochs);
      row.push_back(Cell(AvgIterations(control, variant, pool, args.seeds)));
    }
    table.AddRow(std::move(row));
    std::cout << table.ToString();
  }
  std::cout << "*- timeout after " << kTimeoutIterations << " iterations (identical or\n"
            << "near-identical models), as in the paper. Expected shape: iterations\n"
            << "drop monotonically as the variant diverges from the control; the\n"
            << "zero-delta column times out.\n"
            << "Paper (60000-sample MNIST): samples {-,-,616,504,257}; filters\n"
            << "{-,70,54,33,19}; epochs {-,454,434,349,210}.\n";
  return 0;
}

}  // namespace
}  // namespace dx

int main(int argc, char** argv) { return dx::Run(argc, argv); }

// Batched vs per-sample forward throughput: Model::ForwardBatch against an
// equivalent loop of Model::Forward calls, across batch sizes, on one
// conv-heavy model (MNI_C1 / LeNet-1), one dense-heavy model (PDF_C1), and
// one out-of-paper registry domain's model (TAB_C1 / tabular fraud MLP).
//
// The dense batch kernel streams each weight row once for the whole batch
// and breaks the per-sample serial accumulation chain into batch lanes, so
// MLP-style models gain the most; conv models mainly shed per-sample
// allocation and dispatch overhead. Bit-identity of the two paths is
// asserted inline on every row.
//
// Emits a JSON record (stdout and <artifact dir>/batch_forward.json); the
// checked-in baseline lives at bench/baselines/batch_forward.json.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/tensor/ops.h"
#include "src/util/rng.h"
#include "src/util/table.h"
#include "src/util/timer.h"

namespace {

using namespace dx;
using namespace dx::bench;

struct Row {
  std::string model;
  int batch = 1;
  double scalar_sps = 0.0;   // samples/sec, per-sample loop
  double batched_sps = 0.0;  // samples/sec, ForwardBatch
  double speedup = 0.0;
};

Row BenchOne(const Model& model, int batch, int reps) {
  Rng rng(7);
  std::vector<Tensor> inputs;
  std::vector<const Tensor*> ptrs;
  for (int b = 0; b < batch; ++b) {
    inputs.push_back(Tensor::RandUniform(model.input_shape(), rng));
  }
  for (const Tensor& t : inputs) {
    ptrs.push_back(&t);
  }
  const Tensor stacked = StackSamples(ptrs);

  // Golden equivalence before timing: batched == per-sample, bit for bit.
  const BatchTrace bt = model.ForwardBatch(stacked);
  for (int b = 0; b < batch; ++b) {
    const ForwardTrace ft = model.Forward(inputs[static_cast<size_t>(b)]);
    if (L1Distance(bt.SampleOutput(model.num_layers() - 1, b), ft.Output()) != 0.0f) {
      std::cerr << "ERROR: batched forward diverges from per-sample ("
                << model.name() << ", batch " << batch << ")\n";
      std::exit(1);
    }
  }

  Row row;
  row.model = model.name();
  row.batch = batch;
  {
    Timer timer;
    for (int r = 0; r < reps; ++r) {
      for (int b = 0; b < batch; ++b) {
        const ForwardTrace trace = model.Forward(inputs[static_cast<size_t>(b)]);
        (void)trace;
      }
    }
    row.scalar_sps = static_cast<double>(reps) * batch / timer.ElapsedSeconds();
  }
  {
    Timer timer;
    for (int r = 0; r < reps; ++r) {
      const BatchTrace trace = model.ForwardBatch(stacked);
      (void)trace;
    }
    row.batched_sps = static_cast<double>(reps) * batch / timer.ElapsedSeconds();
  }
  row.speedup = row.scalar_sps > 0.0 ? row.batched_sps / row.scalar_sps : 0.0;
  return row;
}

std::string ToJson(const std::vector<Row>& rows) {
  std::ostringstream out;
  out << "{\n"
      << "  \"bench\": \"batch_forward\",\n"
      << "  \"models\": [\"MNI_C1\", \"PDF_C1\", \"TAB_C1\"],\n"
      << "  \"host_cores\": " << std::thread::hardware_concurrency() << ",\n"
      << "  \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"model\": \"" << r.model << "\", \"batch\": " << r.batch
        << ", \"scalar_samples_per_sec\": " << r.scalar_sps
        << ", \"batched_samples_per_sec\": " << r.batched_sps
        << ", \"speedup\": " << r.speedup << "}" << (i + 1 < rows.size() ? "," : "")
        << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv);
  PrintHeader("Batched forward",
              "Model::ForwardBatch vs per-sample Forward throughput", args);

  std::vector<Row> rows;
  bool meets_target = true;
  // One conv-heavy paper model, one dense-heavy paper model, and one
  // out-of-paper registry domain (tabular) to pin the plug-in path's perf.
  for (const char* name : {"MNI_C1", "PDF_C1", "TAB_C1"}) {
    const Model model = ModelZoo::Build(name, 7);
    for (const int batch : {1, 2, 4, 8, 16, 32}) {
      // Size the rep count so each point runs a few hundred milliseconds.
      const Tensor probe = Tensor::Zeros(model.input_shape());
      Timer probe_timer;
      model.Forward(probe);
      const double per_sample = std::max(1e-7, probe_timer.ElapsedSeconds());
      const int reps = std::max(3, static_cast<int>(0.3 / (per_sample * batch)));
      rows.push_back(BenchOne(model, batch, reps));
      const Row& r = rows.back();
      std::cerr << r.model << " batch=" << r.batch << ": " << r.scalar_sps
                << " -> " << r.batched_sps << " samples/s (" << r.speedup << "x)\n";
      if (r.batch >= 8 && r.model == "PDF_C1" && r.speedup < 1.5) {
        meets_target = false;
      }
    }
  }

  TablePrinter table({"Model", "Batch", "Per-sample s/s", "Batched s/s", "Speedup"});
  for (const Row& r : rows) {
    table.AddRow({r.model, std::to_string(r.batch), TablePrinter::Num(r.scalar_sps, 0),
                  TablePrinter::Num(r.batched_sps, 0),
                  TablePrinter::Num(r.speedup, 2) + "x"});
  }
  std::cout << table.ToString();

  const std::string json = ToJson(rows);
  std::cout << json;
  const std::string path = ArtifactDir() + "/batch_forward.json";
  std::ofstream file(path);
  file << json;
  std::cout << "json written to " << path << "\n";
  if (!meets_target) {
    std::cerr << "WARNING: dense-model batched speedup below 1.5x at batch >= 8\n";
  }
  return 0;
}

// Table 8: "Total time taken by DeepXplore to achieve 100% neuron coverage
// for different DNNs averaged over 10 runs. The last column shows the number
// of seed inputs."
//
// As in the paper, fully connected layers are excluded on the vision domains
// (their neurons are very hard to activate). Each run cycles fresh seeds
// until every model's tracker is full (or a wall-clock cap is hit, reported
// as ">cap").
#include <algorithm>
#include <iostream>
#include <map>

#include "bench/bench_common.h"
#include "src/util/table.h"
#include "src/util/timer.h"

namespace dx {
namespace {

constexpr double kCapSeconds = 30.0;

int Run(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  args.runs = std::min(args.runs, 2);  // Each run can take tens of seconds.
  bench::PrintHeader("Table 8", "time to reach 100% neuron coverage (excl. FC layers)",
                     args);
  TablePrinter table({"Dataset", "Time to 100% cov", "Coverage reached", "# seeds used",
                      "Paper time C1/C2/C3", "Paper #seeds"});
  const std::map<Domain, std::string> paper_time = {
      {Domain::kMnist, "6.6 / 6.8 / 7.6 s"},
      {Domain::kImageNet, "43.6 / 45.3 / 42.7 s"},
      {Domain::kDriving, "11.7 / 12.3 / 9.8 s"},
      {Domain::kPdf, "31.1 / 29.7 / 23.2 s"},
      {Domain::kDrebin, "180.2 / 196.4 / 152.9 s"}};
  const std::map<Domain, int> paper_seeds = {{Domain::kMnist, 9},
                                             {Domain::kImageNet, 35},
                                             {Domain::kDriving, 12},
                                             {Domain::kPdf, 6},
                                             {Domain::kDrebin, 16}};
  for (const Domain domain : AllDomains()) {
    std::vector<Model> models = ModelZoo::TrainedDomain(domain);
    const auto constraint = bench::DefaultConstraint(domain);
    const bool vision = domain == Domain::kMnist || domain == Domain::kImageNet ||
                        domain == Domain::kDriving;
    double total_seconds = 0.0;
    double total_cov = 0.0;
    int total_seeds = 0;
    bool capped = false;
    for (int run = 0; run < args.runs; ++run) {
      DeepXploreConfig config = bench::DefaultConfig(domain);
      config.coverage.exclude_dense = vision;
      config.rng_seed = 500 + static_cast<uint64_t>(run);
      DeepXplore engine(bench::Pointers(models), constraint.get(), config);
      const std::vector<Tensor> seeds = bench::SeedPool(domain, args.seeds);
      RunOptions opts;
      opts.coverage_goal = 1.0f;
      opts.max_seed_passes = 50;
      opts.max_seconds = kCapSeconds;
      const RunStats stats = engine.Run(seeds, opts);
      total_seconds += stats.seconds;
      total_cov += engine.MeanCoverage();
      total_seeds += stats.seeds_tried;
      capped = capped || (engine.MeanCoverage() < 1.0f && stats.seconds >= kCapSeconds);
    }
    const double avg_s = total_seconds / args.runs;
    table.AddRow({DomainName(domain),
                  (capped ? ">" : "") + TablePrinter::Num(avg_s, 1) + " s",
                  TablePrinter::Percent(total_cov / args.runs),
                  std::to_string(total_seeds / args.runs), paper_time.at(domain),
                  std::to_string(paper_seeds.at(domain))});
  }
  std::cout << table.ToString()
            << "Expected shape: full coverage needs only a handful of seeds; the\n"
               "malware MLP domains need few seeds but more per-seed iterations.\n";
  return 0;
}

}  // namespace
}  // namespace dx

int main(int argc, char** argv) { return dx::Run(argc, argv); }

#include "bench/bench_common.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>

#include "src/core/domain.h"
#include "src/util/timer.h"

namespace dx::bench {

BenchArgs ParseArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      args.seeds = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--runs") == 0 && i + 1 < argc) {
      args.runs = std::atoi(argv[++i]);
    } else {
      std::cerr << "unknown flag: " << argv[i] << " (supported: --seeds N, --runs N)\n";
      std::exit(2);
    }
  }
  if (const char* env = std::getenv("DEEPXPLORE_BENCH_SEEDS")) {
    args.seeds = std::atoi(env);
  }
  return args;
}

void PrintHeader(const std::string& experiment, const std::string& description,
                 const BenchArgs& args) {
  std::cout << "==================================================================\n"
            << experiment << ": " << description << "\n"
            << "(seeds=" << args.seeds << ", runs=" << args.runs
            << "; paper used 2000 seeds on a GTX-1070 laptop — absolute numbers\n"
            << " differ, the qualitative shape is what must match)\n"
            << "==================================================================\n";
}

std::unique_ptr<Constraint> DefaultConstraint(Domain domain) {
  return DefaultConstraint(DomainKey(domain));
}

std::unique_ptr<Constraint> DefaultConstraint(const std::string& domain_key) {
  return MakeDomainConstraint(GetDomain(domain_key), "default");
}

DeepXploreConfig DefaultConfig(Domain domain) { return DefaultConfig(DomainKey(domain)); }

DeepXploreConfig DefaultConfig(const std::string& domain_key) {
  // The domain's Table 2 row lives in its DomainSpec (engine_defaults);
  // benches run the paper's longer per-seed budget on top of it.
  DeepXploreConfig config = GetDomain(domain_key).engine_defaults;
  config.max_iterations_per_seed = 100;
  return config;
}

SessionConfig DefaultSessionConfig(Domain domain, const std::string& metric, int workers) {
  return DefaultSessionConfig(DomainKey(domain), metric, workers);
}

SessionConfig DefaultSessionConfig(const std::string& domain_key, const std::string& metric,
                                   int workers) {
  SessionConfig config;
  config.engine = DefaultConfig(domain_key);
  config.metric = metric;
  config.workers = workers;
  // Fixed (worker-independent, so results stay identical across scaling
  // rows) but sized for the scaling bench: 32 seeds per sync batch in
  // executor chunks of 4 gives 8 parallel units per batch.
  config.sync_interval = 32;
  config.batch_size = 4;
  return config;
}

std::string HyperparamString(const DeepXploreConfig& config, Domain domain) {
  const std::string s =
      domain == Domain::kDrebin
          ? "N/A"
          : (domain == Domain::kPdf ? "0.1" : "10/255");
  std::string out = std::to_string(config.lambda1);
  out.erase(out.find_last_not_of('0') + 1);
  out.erase(out.find_last_not_of('.') + 1);
  std::string l2 = std::to_string(config.lambda2);
  l2.erase(l2.find_last_not_of('0') + 1);
  l2.erase(l2.find_last_not_of('.') + 1);
  return out + " / " + l2 + " / " + s + " / 0";
}

std::vector<Tensor> SeedPool(Domain domain, int n) { return SeedPool(DomainKey(domain), n); }

std::vector<Tensor> SeedPool(const std::string& domain_key, int n) {
  const Dataset& test = ModelZoo::TestSet(domain_key);
  std::vector<Tensor> seeds;
  seeds.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    seeds.push_back(test.inputs[static_cast<size_t>(i % test.size())]);
  }
  return seeds;
}

std::vector<Model*> Pointers(std::vector<Model>& models) {
  std::vector<Model*> ptrs;
  ptrs.reserve(models.size());
  for (Model& m : models) {
    ptrs.push_back(&m);
  }
  return ptrs;
}

double MeanTimeToFirstDifference(std::vector<Model>& models, const Constraint& constraint,
                                 const DeepXploreConfig& config,
                                 const std::vector<Tensor>& pool, int runs) {
  double total = 0.0;
  for (int run = 0; run < runs; ++run) {
    DeepXploreConfig run_config = config;
    run_config.rng_seed = config.rng_seed + static_cast<uint64_t>(run) * 7919;
    DeepXplore engine(Pointers(models), &constraint, run_config);
    Timer timer;
    bool found = false;
    // Scan a bounded window of the pool: a run that exhausts it contributes
    // its full scan time (an upper bound, like the paper's timeout handling).
    const size_t window = std::min<size_t>(pool.size(), 8);
    for (size_t i = 0; i < window && !found; ++i) {
      const size_t index = (i + static_cast<size_t>(run) * 13) % pool.size();
      found = engine.GenerateFromSeed(pool[index], static_cast<int>(index)).has_value();
    }
    total += timer.ElapsedSeconds();
  }
  return total / runs;
}

std::string ArtifactDir() {
  const char* env = std::getenv("DEEPXPLORE_ARTIFACT_DIR");
  const std::string dir = env != nullptr ? env : "bench_artifacts";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

}  // namespace dx::bench

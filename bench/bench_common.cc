#include "bench/bench_common.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>

#include "src/constraints/image_constraints.h"
#include "src/constraints/malware_constraints.h"
#include "src/util/timer.h"

namespace dx::bench {

BenchArgs ParseArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      args.seeds = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--runs") == 0 && i + 1 < argc) {
      args.runs = std::atoi(argv[++i]);
    } else {
      std::cerr << "unknown flag: " << argv[i] << " (supported: --seeds N, --runs N)\n";
      std::exit(2);
    }
  }
  if (const char* env = std::getenv("DEEPXPLORE_BENCH_SEEDS")) {
    args.seeds = std::atoi(env);
  }
  return args;
}

void PrintHeader(const std::string& experiment, const std::string& description,
                 const BenchArgs& args) {
  std::cout << "==================================================================\n"
            << experiment << ": " << description << "\n"
            << "(seeds=" << args.seeds << ", runs=" << args.runs
            << "; paper used 2000 seeds on a GTX-1070 laptop — absolute numbers\n"
            << " differ, the qualitative shape is what must match)\n"
            << "==================================================================\n";
}

std::unique_ptr<Constraint> DefaultConstraint(Domain domain) {
  switch (domain) {
    case Domain::kMnist:
    case Domain::kImageNet:
    case Domain::kDriving:
      return std::make_unique<LightingConstraint>();
    case Domain::kPdf:
      return std::make_unique<PdfConstraint>();
    case Domain::kDrebin:
      return std::make_unique<DrebinConstraint>();
  }
  throw std::invalid_argument("unknown domain");
}

DeepXploreConfig DefaultConfig(Domain domain) {
  // Table 2's hyperparameter block, adapted where our substrate differs: the
  // step for lighting moves every pixel by s/255-like amounts in the paper's
  // 0-255 space; our pixels live in [0,1], so s scales down by 255.
  DeepXploreConfig config;
  // Coverage as in the reference implementation's generation loop: raw
  // activations against t = 0 (per-layer scaling is used by the measurement
  // experiments, Tables 5-7 and Figure 9, which set it explicitly).
  config.coverage.threshold = 0.0f;
  config.coverage.scale_per_layer = false;
  switch (domain) {
    case Domain::kMnist:
      // The paper notes Table 2's values are "empirically chosen to maximize
      // the rate of finding difference-inputs"; on our substrate MNIST needs
      // a stronger push on the deviator (cf. Table 10, where the paper's
      // MNIST runs are fastest at lambda1 = 3).
      config.lambda1 = 2.0f;
      config.lambda2 = 0.1f;
      config.step = 10.0f / 255.0f;
      break;
    case Domain::kImageNet:
    case Domain::kDriving:
      config.lambda1 = 1.0f;
      config.lambda2 = 0.1f;
      config.step = 10.0f / 255.0f;
      break;
    case Domain::kPdf:
      config.lambda1 = 2.0f;
      config.lambda2 = 0.1f;
      config.step = 0.1f;
      break;
    case Domain::kDrebin:
      config.lambda1 = 1.0f;
      config.lambda2 = 0.5f;
      config.step = 1.0f;  // Discrete feature flips; Table 2 lists s = N/A.
      break;
  }
  config.max_iterations_per_seed = 100;
  return config;
}

SessionConfig DefaultSessionConfig(Domain domain, const std::string& metric, int workers) {
  SessionConfig config;
  config.engine = DefaultConfig(domain);
  config.metric = metric;
  config.workers = workers;
  // Fixed (worker-independent, so results stay identical across scaling
  // rows) but sized for the scaling bench: 32 seeds per sync batch in
  // executor chunks of 4 gives 8 parallel units per batch.
  config.sync_interval = 32;
  config.batch_size = 4;
  return config;
}

std::string HyperparamString(const DeepXploreConfig& config, Domain domain) {
  const std::string s =
      domain == Domain::kDrebin
          ? "N/A"
          : (domain == Domain::kPdf ? "0.1" : "10/255");
  std::string out = std::to_string(config.lambda1);
  out.erase(out.find_last_not_of('0') + 1);
  out.erase(out.find_last_not_of('.') + 1);
  std::string l2 = std::to_string(config.lambda2);
  l2.erase(l2.find_last_not_of('0') + 1);
  l2.erase(l2.find_last_not_of('.') + 1);
  return out + " / " + l2 + " / " + s + " / 0";
}

std::vector<Tensor> SeedPool(Domain domain, int n) {
  const Dataset& test = ModelZoo::TestSet(domain);
  std::vector<Tensor> seeds;
  seeds.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    seeds.push_back(test.inputs[static_cast<size_t>(i % test.size())]);
  }
  return seeds;
}

std::vector<Model*> Pointers(std::vector<Model>& models) {
  std::vector<Model*> ptrs;
  ptrs.reserve(models.size());
  for (Model& m : models) {
    ptrs.push_back(&m);
  }
  return ptrs;
}

double MeanTimeToFirstDifference(std::vector<Model>& models, const Constraint& constraint,
                                 const DeepXploreConfig& config,
                                 const std::vector<Tensor>& pool, int runs) {
  double total = 0.0;
  for (int run = 0; run < runs; ++run) {
    DeepXploreConfig run_config = config;
    run_config.rng_seed = config.rng_seed + static_cast<uint64_t>(run) * 7919;
    DeepXplore engine(Pointers(models), &constraint, run_config);
    Timer timer;
    bool found = false;
    // Scan a bounded window of the pool: a run that exhausts it contributes
    // its full scan time (an upper bound, like the paper's timeout handling).
    const size_t window = std::min<size_t>(pool.size(), 8);
    for (size_t i = 0; i < window && !found; ++i) {
      const size_t index = (i + static_cast<size_t>(run) * 13) % pool.size();
      found = engine.GenerateFromSeed(pool[index], static_cast<int>(index)).has_value();
    }
    total += timer.ElapsedSeconds();
  }
  return total / runs;
}

std::string ArtifactDir() {
  const char* env = std::getenv("DEEPXPLORE_ARTIFACT_DIR");
  const std::string dir = env != nullptr ? env : "bench_artifacts";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

}  // namespace dx::bench

// Table 7: "Average number of overlaps among activated neurons for a pair of
// inputs of the same class and different classes" on LeNet-5 (MNI_C3).
//
// 100 same-class pairs vs 100 different-class pairs; reports the average
// number of activated neurons per input and the average overlap. Expected
// shape: same-class pairs share substantially more activated neurons.
#include <algorithm>
#include <iostream>
#include <set>

#include "bench/bench_common.h"
#include "src/coverage/neuron_coverage.h"
#include "src/util/rng.h"
#include "src/util/table.h"

namespace dx {
namespace {

struct PairStats {
  double avg_activated = 0.0;
  double avg_overlap = 0.0;
};

int64_t Key(const NeuronId& id) { return static_cast<int64_t>(id.layer) * 100000 + id.index; }

PairStats Measure(const Model& model, const NeuronCoverageTracker& tracker,
                  const Dataset& data, bool same_class, int pairs, Rng& rng) {
  PairStats stats;
  int done = 0;
  while (done < pairs) {
    const int a = static_cast<int>(rng.UniformInt(0, data.size() - 1));
    const int b = static_cast<int>(rng.UniformInt(0, data.size() - 1));
    if (a == b || (data.Label(a) == data.Label(b)) != same_class) {
      continue;
    }
    const auto act_a = tracker.Activated(model, model.Forward(data.inputs[static_cast<size_t>(a)]));
    const auto act_b = tracker.Activated(model, model.Forward(data.inputs[static_cast<size_t>(b)]));
    std::set<int64_t> set_a;
    for (const NeuronId& id : act_a) {
      set_a.insert(Key(id));
    }
    int overlap = 0;
    for (const NeuronId& id : act_b) {
      overlap += set_a.count(Key(id)) > 0 ? 1 : 0;
    }
    stats.avg_activated += 0.5 * (static_cast<double>(act_a.size()) + act_b.size());
    stats.avg_overlap += overlap;
    ++done;
  }
  stats.avg_activated /= pairs;
  stats.avg_overlap /= pairs;
  return stats;
}

int Run(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintHeader("Table 7", "activated-neuron overlap: same vs different class pairs",
                     args);
  const Model model = ModelZoo::Trained("MNI_C3");
  CoverageOptions opts;
  opts.threshold = 0.25f;
  NeuronCoverageTracker tracker(model, opts);
  const Dataset& test = ModelZoo::TestSet(Domain::kMnist);
  Rng rng(7);
  const PairStats diff = Measure(model, tracker, test, /*same_class=*/false, 100, rng);
  const PairStats same = Measure(model, tracker, test, /*same_class=*/true, 100, rng);

  TablePrinter table({"", "Total neurons", "Avg. activated", "Avg. overlap"});
  table.AddRow({"Diff. class", std::to_string(tracker.total_neurons()),
                TablePrinter::Num(diff.avg_activated, 1), TablePrinter::Num(diff.avg_overlap, 1)});
  table.AddRow({"Same class", std::to_string(tracker.total_neurons()),
                TablePrinter::Num(same.avg_activated, 1), TablePrinter::Num(same.avg_overlap, 1)});
  std::cout << table.ToString()
            << "Paper (LeNet-5, 268 neurons): diff-class 83.6 activated / 45.9 overlap;\n"
               "same-class 84.1 activated / 74.2 overlap.\n"
            << "Shape check: same-class overlap > diff-class overlap: "
            << (same.avg_overlap > diff.avg_overlap ? "PASS" : "MISMATCH") << "\n";
  return 0;
}

}  // namespace
}  // namespace dx

int main(int argc, char** argv) { return dx::Run(argc, argv); }

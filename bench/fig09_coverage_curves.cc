// Figure 9: "The neuron coverage achieved by the same number of inputs (1%
// of the original test set) produced by DeepXplore, adversarial testing, and
// random selection from the original test set", as the activation threshold
// t sweeps {0, 0.25, 0.5, 0.75}.
//
// Coverage is measured with per-layer min-max scaling (paper §7.1) and
// averaged over the domain's three models. The paper's headline: DeepXplore
// covers on average +34.4% more neurons than random and +33.2% more than
// adversarial.
#include <iostream>

#include "bench/bench_common.h"
#include "src/baselines/adversarial.h"
#include "src/baselines/random_testing.h"
#include "src/coverage/neuron_coverage.h"
#include "src/util/rng.h"
#include "src/util/table.h"

namespace dx {
namespace {

constexpr float kThresholds[] = {0.0f, 0.25f, 0.5f, 0.75f};

float MeanCoverageOf(std::vector<Model>& models, const std::vector<Tensor>& inputs,
                     float threshold) {
  double total = 0.0;
  for (Model& model : models) {
    CoverageOptions opts;
    opts.threshold = threshold;
    opts.scale_per_layer = true;
    NeuronCoverageTracker tracker(model, opts);
    for (const Tensor& x : inputs) {
      tracker.Update(model, model.Forward(x));
    }
    total += tracker.Coverage();
  }
  return static_cast<float>(total / static_cast<double>(models.size()));
}

int Run(int argc, char** argv) {
  const bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintHeader("Figure 9", "neuron coverage vs threshold t for three generators",
                     args);

  double dx_sum = 0.0;
  double adv_sum = 0.0;
  double rand_sum = 0.0;
  int cells = 0;
  for (const Domain domain : AllDomains()) {
    const Dataset& test = ModelZoo::TestSet(domain);
    // "1% of the original test set", floored to a usable sample size.
    const int k = std::max(20, test.size() / 100);
    std::vector<Model> models = ModelZoo::TrainedDomain(domain);

    // DeepXplore inputs: first k generated tests. Generation emphasizes the
    // coverage objective (lambda2 = 1): at our model scale (~100-800 neurons
    // vs the paper's 14k+) random inputs already cover most easy neurons, so
    // the coverage-seeking term is what differentiates the generators — the
    // same reason the paper's Table 5 uses lambda2 = 1.
    const auto constraint = bench::DefaultConstraint(domain);
    DeepXploreConfig config = bench::DefaultConfig(domain);
    config.lambda2 = 1.0f;
    config.rng_seed = 905;
    DeepXplore engine(bench::Pointers(models), constraint.get(), config);
    RunOptions opts;
    opts.max_tests = k;
    opts.max_seed_passes = 4;
    const RunStats stats = engine.Run(bench::SeedPool(domain, args.seeds), opts);
    std::vector<Tensor> dx_inputs;
    for (const GeneratedTest& t : stats.tests) {
      dx_inputs.push_back(t.input);
    }

    // Adversarial inputs: FGSM against the domain's first model.
    Rng rng(906);
    const std::vector<Tensor> adv_inputs =
        AdversarialInputs(models[0], test, k, 0.1f, rng);
    // Random inputs from the test set.
    const std::vector<Tensor> rand_inputs = RandomInputs(test, k, rng);

    TablePrinter table({"t", "DeepXplore", "Adversarial", "Random"});
    for (const float t : kThresholds) {
      const float dx_cov = MeanCoverageOf(models, dx_inputs, t);
      const float adv_cov = MeanCoverageOf(models, adv_inputs, t);
      const float rand_cov = MeanCoverageOf(models, rand_inputs, t);
      dx_sum += dx_cov;
      adv_sum += adv_cov;
      rand_sum += rand_cov;
      ++cells;
      table.AddRow({TablePrinter::Num(t), TablePrinter::Percent(dx_cov),
                    TablePrinter::Percent(adv_cov), TablePrinter::Percent(rand_cov)});
    }
    std::cout << "(" << DomainName(domain) << ", " << dx_inputs.size()
              << " DeepXplore inputs vs " << k << " baseline inputs)\n"
              << table.ToString();
  }
  std::cout << "Aggregate means over all datasets/thresholds: DeepXplore "
            << TablePrinter::Percent(dx_sum / cells) << ", adversarial "
            << TablePrinter::Percent(adv_sum / cells) << ", random "
            << TablePrinter::Percent(rand_sum / cells) << "\n"
            << "Shape notes: (1) coverage falls monotonically as t rises — holds.\n"
            << "(2) DeepXplore > adversarial on average — holds. (3) the paper's\n"
            << "+34% gap over random does NOT manifest at this scale: our models\n"
            << "have 100-800 easy neurons, so a handful of random test inputs already\n"
            << "sits at the reachable-coverage ceiling (the paper's models have\n"
            << "thousands of hard neurons and random inputs plateau far below it;\n"
            << "cf. its observation that the FULL MNIST test set reaches only 57.7%).\n";
  return 0;
}

}  // namespace
}  // namespace dx

int main(int argc, char** argv) { return dx::Run(argc, argv); }

// Micro-benchmarks (google-benchmark) for the §8 discussion: the asymmetry
// between prediction/gradient cost and training cost that makes DeepXplore
// cheap relative to training, plus the per-iteration cost of the joint
// optimization on each domain's models.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/constraints/constraint.h"
#include "src/models/trainer.h"
#include "src/util/rng.h"

namespace dx {

Model& CachedModel(const std::string& name) {
  static std::map<std::string, Model>* cache = new std::map<std::string, Model>();
  auto it = cache->find(name);
  if (it == cache->end()) {
    it = cache->emplace(name, ModelZoo::Trained(name)).first;
  }
  return it->second;
}

const Tensor& SampleInput(Domain domain) {
  return ModelZoo::TestSet(domain).inputs[0];
}

void BM_Forward(benchmark::State& state, const std::string& name, Domain domain) {
  Model& model = CachedModel(name);
  const Tensor& x = SampleInput(domain);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Predict(x));
  }
}

void BM_InputGradient(benchmark::State& state, const std::string& name, Domain domain) {
  Model& model = CachedModel(name);
  const Tensor& x = SampleInput(domain);
  for (auto _ : state) {
    const ForwardTrace trace = model.Forward(x);
    Tensor seed(model.output_shape());
    seed[0] = 1.0f;
    benchmark::DoNotOptimize(model.BackwardInput(trace, model.num_layers() - 1, seed));
  }
}

void BM_TrainingStep(benchmark::State& state, const std::string& name, Domain domain) {
  // One example of forward + parameter backward — the unit of training cost.
  Model model = ModelZoo::Build(name, 1);
  const Dataset& train = ModelZoo::TrainSet(domain);
  Trainer::CalibrateNormLayers(&model, train, 8);
  const Tensor& x = train.inputs[0];
  std::vector<Tensor> grads = model.InitParamGrads();
  for (auto _ : state) {
    const ForwardTrace trace = model.Forward(x);
    Tensor seed(model.output_shape());
    seed[0] = 1.0f;
    benchmark::DoNotOptimize(
        model.BackwardParams(trace, model.num_layers() - 1, seed, &grads));
  }
}

void BM_JointOptimizationIteration(benchmark::State& state, Domain domain) {
  static std::map<Domain, std::vector<Model>>* zoo =
      new std::map<Domain, std::vector<Model>>();
  if (zoo->find(domain) == zoo->end()) {
    zoo->emplace(domain, ModelZoo::TrainedDomain(domain));
  }
  std::vector<Model>& models = zoo->at(domain);
  const auto constraint = bench::DefaultConstraint(domain);
  DeepXplore engine(bench::Pointers(models), constraint.get(),
                    bench::DefaultConfig(domain));
  const Tensor& x = SampleInput(domain);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.JointGradient(x, 0, 0));
  }
}

}  // namespace dx

int main(int argc, char** argv) {
  using dx::Domain;
  const std::pair<const char*, Domain> models[] = {
      {"MNI_C3", Domain::kMnist},   {"IMG_C1", Domain::kImageNet},
      {"DRV_C1", Domain::kDriving}, {"PDF_C2", Domain::kPdf},
      {"APP_C1", Domain::kDrebin}};
  for (const auto& [name_cstr, domain] : models) {
    const std::string name(name_cstr);
    const Domain d = domain;
    benchmark::RegisterBenchmark(
        ("Forward/" + name).c_str(),
        [name, d](benchmark::State& state) { dx::BM_Forward(state, name, d); });
    benchmark::RegisterBenchmark(
        ("InputGradient/" + name).c_str(),
        [name, d](benchmark::State& state) { dx::BM_InputGradient(state, name, d); });
    benchmark::RegisterBenchmark(
        ("TrainingStep/" + name).c_str(),
        [name, d](benchmark::State& state) { dx::BM_TrainingStep(state, name, d); });
  }
  for (const auto& [name_cstr, domain] : models) {
    const Domain d = domain;
    benchmark::RegisterBenchmark(
        ("JointOptIteration/" + dx::DomainName(d)).c_str(),
        [d](benchmark::State& state) { dx::BM_JointOptimizationIteration(state, d); });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

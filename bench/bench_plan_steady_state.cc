// Steady-state execution-plan throughput: the compiled zero-allocation path
// (Model::Compile + plan-backed ForwardBatch / BackwardInputBatch /
// BackwardSample) against the allocating by-value API, on one conv-heavy
// model (MNI_C1) and one dense-heavy model (PDF_C1). Ops: "forward",
// "forward+backward", and "backward" (gradient sweep alone over warm
// activations — the gradient-ascent inner-loop shape).
//
// This is the bench behind the PR-4 refactor: once the plan is warm, an
// iteration touches only pre-sized slabs and arena scratch — and since the
// SIMD/GEMM kernel rewrite, the plan path also runs the im2col+GEMM kernels
// while the by-value path stays on the scalar oracle. The two paths are
// checked inline before timing under the same ULP/abs tolerances the test
// suite uses (they accumulate in different orders, so bit-identity is not
// the contract here).
//
// Emits a JSON record (stdout and <artifact dir>/plan_steady_state.json);
// the checked-in baseline lives at bench/baselines/plan_steady_state.json.
// The CI Release job runs this bench once as a smoke test so the plan path
// cannot bit-rot in optimized builds.
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/nn/execution_plan.h"
#include "src/tensor/ops.h"
#include "src/util/rng.h"
#include "src/util/table.h"
#include "src/util/timer.h"

namespace {

using namespace dx;
using namespace dx::bench;

enum class Op { kForward, kForwardBackward, kBackward };

const char* OpName(Op op) {
  switch (op) {
    case Op::kForward: return "forward";
    case Op::kForwardBackward: return "forward+backward";
    case Op::kBackward: return "backward";
  }
  return "?";
}

struct Row {
  std::string model;
  std::string op;           // "forward", "forward+backward", or "backward"
  int batch = 8;
  double byvalue_sps = 0.0;  // samples/sec, allocating by-value API
  double plan_sps = 0.0;     // samples/sec, compiled plan
  double speedup = 0.0;
};

// Minimal mirror of the test suite's ULP/abs tolerance check (the bench can
// not link gtest): an element passes within `max_abs` absolutely or within
// `max_ulp` representable floats. Same bounds as tests/test_util.h.
int64_t UlpKey(float f) {
  int32_t i;
  std::memcpy(&i, &f, sizeof(i));
  return i >= 0 ? int64_t{i} : int64_t{std::numeric_limits<int32_t>::min()} - i;
}

bool BuffersNear(const float* got, const float* want, int64_t n, int64_t max_ulp,
                 float max_abs) {
  for (int64_t i = 0; i < n; ++i) {
    if (std::abs(got[i] - want[i]) <= max_abs) {
      continue;
    }
    if (!(std::isfinite(got[i]) && std::isfinite(want[i]))) {
      return false;
    }
    const int64_t d = UlpKey(got[i]) - UlpKey(want[i]);
    if ((d < 0 ? -d : d) > max_ulp) {
      return false;
    }
  }
  return true;
}

Row BenchOne(const Model& model, int batch, Op op, int reps) {
  Rng rng(7);
  const Tensor stacked =
      Tensor::RandUniform(BatchedShape(batch, model.input_shape()), rng);
  const int last = model.num_layers() - 1;
  const Tensor seed =
      Tensor::RandUniform(BatchedShape(batch, model.output_shape()), rng, -1.0f, 1.0f);

  ExecutionPlan plan = model.Compile(batch);

  // Correctness before timing: the plan (GEMM/SIMD) path must reproduce the
  // by-value scalar oracle within the kernel tolerances (forward 512 ULP /
  // 1e-5 abs, backward 8192 ULP / 1e-4 abs — see tests/test_util.h).
  {
    const BatchTrace want = model.ForwardBatch(stacked);
    const BatchTrace& got = model.ForwardBatch(stacked, plan);
    for (int l = 0; l < model.num_layers(); ++l) {
      const Tensor& g = got.outputs[static_cast<size_t>(l)];
      const Tensor& w = want.outputs[static_cast<size_t>(l)];
      if (g.numel() != w.numel() ||
          !BuffersNear(g.data(), w.data(), w.numel(), 512, 1e-5f)) {
        std::cerr << "ERROR: plan forward diverges from by-value (" << model.name()
                  << ", layer " << l << ")\n";
        std::exit(1);
      }
    }
    const Tensor want_g = model.BackwardInputBatch(want, last, seed);
    const Tensor& got_g = model.BackwardInputBatch(plan, last, seed);
    if (got_g.numel() != want_g.numel() ||
        !BuffersNear(got_g.data(), want_g.data(), want_g.numel(), 8192, 1e-4f)) {
      std::cerr << "ERROR: plan backward diverges from by-value (" << model.name()
                << ")\n";
      std::exit(1);
    }
  }

  Row row;
  row.model = model.name();
  row.op = OpName(op);
  row.batch = batch;
  if (op == Op::kBackward) {
    // Backward phase in isolation: activations stay warm from one forward and
    // only the gradient sweep is timed — the shape of the gradient-ascent
    // inner loop, which reuses each forward across several ascent steps.
    const BatchTrace trace = model.ForwardBatch(stacked);
    {
      Timer timer;
      for (int r = 0; r < reps; ++r) {
        const Tensor g = model.BackwardInputBatch(trace, last, seed);
        (void)g;
      }
      row.byvalue_sps = static_cast<double>(reps) * batch / timer.ElapsedSeconds();
    }
    model.ForwardBatch(stacked, plan);  // Warm the slabs at this width.
    {
      Timer timer;
      for (int r = 0; r < reps; ++r) {
        model.BackwardInputBatch(plan, last, seed);
      }
      row.plan_sps = static_cast<double>(reps) * batch / timer.ElapsedSeconds();
    }
    row.speedup = row.byvalue_sps > 0.0 ? row.plan_sps / row.byvalue_sps : 0.0;
    return row;
  }
  const bool backward = op == Op::kForwardBackward;
  {
    Timer timer;
    for (int r = 0; r < reps; ++r) {
      const BatchTrace trace = model.ForwardBatch(stacked);
      if (backward) {
        const Tensor g = model.BackwardInputBatch(trace, last, seed);
        (void)g;
      }
    }
    row.byvalue_sps = static_cast<double>(reps) * batch / timer.ElapsedSeconds();
  }
  {
    model.ForwardBatch(stacked, plan);  // Warm the slabs at this width.
    Timer timer;
    for (int r = 0; r < reps; ++r) {
      model.ForwardBatch(stacked, plan);
      if (backward) {
        model.BackwardInputBatch(plan, last, seed);
      }
    }
    row.plan_sps = static_cast<double>(reps) * batch / timer.ElapsedSeconds();
  }
  row.speedup = row.byvalue_sps > 0.0 ? row.plan_sps / row.byvalue_sps : 0.0;
  return row;
}

std::string ToJson(const std::vector<Row>& rows) {
  std::ostringstream out;
  out << "{\n"
      << "  \"bench\": \"plan_steady_state\",\n"
      << "  \"models\": [\"MNI_C1\", \"PDF_C1\"],\n"
      << "  \"host_cores\": " << std::thread::hardware_concurrency() << ",\n"
      << "  \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"model\": \"" << r.model << "\", \"op\": \"" << r.op
        << "\", \"batch\": " << r.batch << ", \"byvalue_samples_per_sec\": "
        << r.byvalue_sps << ", \"plan_samples_per_sec\": " << r.plan_sps
        << ", \"speedup\": " << r.speedup << "}" << (i + 1 < rows.size() ? "," : "")
        << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv);
  PrintHeader("Plan steady state",
              "compiled ExecutionPlan vs allocating by-value execution", args);

  std::vector<Row> rows;
  bool plan_wins = true;
  for (const char* name : {"MNI_C1", "PDF_C1"}) {
    const Model model = ModelZoo::Build(name, 7);
    for (const Op op : {Op::kForward, Op::kForwardBackward, Op::kBackward}) {
      for (const int batch : {1, 8}) {
        const Tensor probe = Tensor::Zeros(model.input_shape());
        Timer probe_timer;
        model.Forward(probe);
        const double per_sample = std::max(1e-7, probe_timer.ElapsedSeconds());
        const int cost_factor = op == Op::kForward ? 1 : op == Op::kBackward ? 2 : 3;
        const int reps =
            std::max(3, static_cast<int>(0.3 / (per_sample * batch * cost_factor)));
        rows.push_back(BenchOne(model, batch, op, reps));
        const Row& r = rows.back();
        std::cerr << r.model << " " << r.op << " batch=" << r.batch << ": "
                  << r.byvalue_sps << " -> " << r.plan_sps << " samples/s ("
                  << r.speedup << "x)\n";
        if (r.speedup < 0.95) {
          plan_wins = false;  // The plan must never lose to the allocating path.
        }
      }
    }
  }

  TablePrinter table({"Model", "Op", "Batch", "By-value s/s", "Plan s/s", "Speedup"});
  for (const Row& r : rows) {
    table.AddRow({r.model, r.op, std::to_string(r.batch),
                  TablePrinter::Num(r.byvalue_sps, 0), TablePrinter::Num(r.plan_sps, 0),
                  TablePrinter::Num(r.speedup, 2) + "x"});
  }
  std::cout << table.ToString();

  const std::string json = ToJson(rows);
  std::cout << json;
  const std::string path = ArtifactDir() + "/plan_steady_state.json";
  std::ofstream file(path);
  file << json;
  std::cout << "json written to " << path << "\n";
  if (!plan_wins) {
    std::cerr << "WARNING: plan path slower than the by-value path on some row\n";
  }
  return 0;
}

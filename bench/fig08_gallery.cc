// Figure 8: gallery of difference-inducing inputs under the three image
// constraints (lighting / single occlusion / multiple tiny black rects) for
// the MNIST, ImageNet, and Driving stand-ins.
//
// Seed and generated images are written to the artifact directory as
// PGM/PPM; MNIST pairs are additionally rendered as ASCII art. Captions use
// the paper's "all:<consensus> -> <model>:<deviation>" format.
#include <iostream>
#include <memory>
#include <sstream>

#include "bench/bench_common.h"
#include "src/constraints/image_constraints.h"
#include "src/data/tiny_images.h"
#include "src/util/image_io.h"

namespace dx {
namespace {

struct ConstraintCase {
  std::string label;
  std::unique_ptr<Constraint> constraint;
};

std::vector<ConstraintCase> ConstraintsFor(Domain domain) {
  std::vector<ConstraintCase> cases;
  cases.push_back({"light", std::make_unique<LightingConstraint>()});
  const int occ = domain == Domain::kMnist ? 8 : 10;
  cases.push_back({"occl", std::make_unique<OcclusionConstraint>(occ, occ)});
  cases.push_back({"blackout", std::make_unique<BlackRectsConstraint>(6, 3)});
  return cases;
}

std::string LabelString(Domain domain, const std::vector<int>& labels,
                        const std::vector<float>& outputs) {
  std::ostringstream out;
  if (domain == Domain::kDriving) {
    for (size_t k = 0; k < outputs.size(); ++k) {
      out << (k > 0 ? " / " : "")
          << (outputs[k] < -0.05f ? "left" : (outputs[k] > 0.05f ? "right" : "straight"))
          << "(" << outputs[k] << ")";
    }
    return out.str();
  }
  for (size_t k = 0; k < labels.size(); ++k) {
    out << (k > 0 ? " / " : "");
    if (domain == Domain::kImageNet) {
      out << TinyImageClassName(labels[k]);
    } else {
      out << labels[k];
    }
  }
  return out.str();
}

void SaveImage(const std::string& path, const Tensor& img) {
  const int channels = img.dim(0);
  const int h = img.dim(1);
  const int w = img.dim(2);
  // CHW -> HWC for the image writer.
  std::vector<float> hwc(static_cast<size_t>(h) * w * channels);
  for (int c = 0; c < channels; ++c) {
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        hwc[(static_cast<size_t>(y) * w + x) * channels + c] =
            img[(static_cast<int64_t>(c) * h + y) * w + x];
      }
    }
  }
  WriteImage(path, hwc, h, w, channels);
}

int Run(int argc, char** argv) {
  const bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintHeader("Figure 8", "difference-inducing input gallery per constraint", args);
  const std::string dir = bench::ArtifactDir();
  int saved = 0;

  for (const Domain domain : {Domain::kMnist, Domain::kImageNet, Domain::kDriving}) {
    std::vector<Model> models = ModelZoo::TrainedDomain(domain);
    const auto names = DomainModelNames(domain);
    const std::vector<Tensor> pool = bench::SeedPool(domain, args.seeds);
    for (auto& [label, constraint] : ConstraintsFor(domain)) {
      DeepXploreConfig config = bench::DefaultConfig(domain);
      if (label != "light") {
        config.step = 25.0f / 255.0f;  // Occlusion edits need larger local steps.
        config.max_iterations_per_seed = 150;
      }
      config.rng_seed = 904;
      DeepXplore engine(bench::Pointers(models), constraint.get(), config);
      RunOptions opts;
      opts.max_tests = 1;
      const RunStats stats = engine.Run(pool, opts);
      std::cout << "--- " << DomainName(domain) << " / " << label << " ---\n";
      if (stats.tests.empty()) {
        std::cout << "no difference found within budget (increase --seeds)\n";
        continue;
      }
      const GeneratedTest& test = stats.tests.front();
      const Tensor& seed = pool[static_cast<size_t>(test.seed_index)];
      const std::string base =
          dir + "/fig08_" + DomainName(domain) + "_" + label;
      SaveImage(base + "_seed" + (domain == Domain::kMnist ? ".pgm" : ".ppm"), seed);
      SaveImage(base + "_diff" + (domain == Domain::kMnist ? ".pgm" : ".ppm"), test.input);
      saved += 2;
      std::vector<int> seed_labels;
      std::vector<float> seed_outputs;
      if (domain == Domain::kDriving) {
        seed_outputs = engine.PredictScalars(seed);
      } else {
        seed_labels = engine.PredictLabels(seed);
      }
      std::cout << "seed: all -> " << LabelString(domain, seed_labels, seed_outputs)
                << "\n"
                << "diff: " << LabelString(domain, test.labels, test.outputs) << "  ("
                << names[static_cast<size_t>(test.deviating_model)] << " deviates, "
                << test.iterations << " iterations)\n"
                << "saved " << base << "_{seed,diff}\n";
      if (domain == Domain::kMnist) {
        std::cout << "seed image:\n"
                  << AsciiArt(seed.values(), 28, 28, 1) << "generated image:\n"
                  << AsciiArt(test.input.values(), 28, 28, 1);
      }
    }
  }
  std::cout << "wrote " << saved << " images to " << dir << "/\n";
  return saved > 0 ? 0 : 1;
}

}  // namespace
}  // namespace dx

int main(int argc, char** argv) { return dx::Run(argc, argv); }

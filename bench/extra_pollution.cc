// §7.3 "Detecting training data pollution attack".
//
// Two LeNet-5 models: one trained on clean digits, one on a polluted set
// where 30% of the 9s are relabeled as 1. DeepXplore generates inputs the two
// models disagree on (clean says 9, polluted says 1); the training samples
// most SSIM-similar to those inputs are flagged as polluted. The paper
// reports 95.6% of polluted samples correctly identified.
#include <iostream>

#include "bench/bench_common.h"
#include "src/analysis/pollution.h"
#include "src/constraints/image_constraints.h"
#include "src/data/dataset.h"
#include "src/models/trainer.h"
#include "src/util/rng.h"
#include "src/util/table.h"

namespace dx {
namespace {

int Run(int argc, char** argv) {
  const bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintHeader("Extra (7.3)", "training-data pollution detection via SSIM matching",
                     args);
  const Dataset& clean_train = ModelZoo::TrainSet(Domain::kMnist);
  Dataset polluted_train = clean_train;
  Rng pollution_rng(31337);
  const std::vector<int> polluted =
      PolluteLabels(&polluted_train, /*from=*/9, /*to=*/1, 0.3, pollution_rng);
  std::cout << "polluted " << polluted.size() << " training samples (9 -> 1)\n";

  const auto train_lenet5 = [](const Dataset& data) {
    Model model = ModelZoo::Build("MNI_C3", 5150);
    TrainConfig cfg;
    cfg.epochs = 8;
    cfg.learning_rate = 3e-3f;
    cfg.seed = 17;
    Trainer::Fit(&model, data, cfg);
    return model;
  };
  Model clean_model = train_lenet5(clean_train);
  Model polluted_model = train_lenet5(polluted_train);

  // Difference-inducing inputs where the models split exactly along the
  // pollution: clean: 9, polluted: 1.
  LightingConstraint constraint;
  DeepXploreConfig config = bench::DefaultConfig(Domain::kMnist);
  config.forced_target_model = 1;
  config.rng_seed = 909;
  DeepXplore engine({&clean_model, &polluted_model}, &constraint, config);
  // Seed from digit-9 test images: the pollution lives on the 9 -> 1 label
  // boundary, so that is where the two models' decision logic diverges.
  std::vector<Tensor> attack_inputs;
  const Dataset& test_set = ModelZoo::TestSet(Domain::kMnist);
  std::vector<Tensor> pool;
  for (int i = 0; i < test_set.size(); ++i) {
    if (test_set.Label(i) == 9) {
      pool.push_back(test_set.inputs[static_cast<size_t>(i)]);
    }
  }
  for (size_t i = 0; i < pool.size() && attack_inputs.size() < 25; ++i) {
    const auto test = engine.GenerateFromSeed(pool[i], static_cast<int>(i));
    if (!test.has_value()) {
      continue;
    }
    if (test->labels[0] == 9 && test->labels[1] == 1) {
      attack_inputs.push_back(test->input);
    }
  }
  std::cout << "generated " << attack_inputs.size()
            << " inputs classified 9 by the clean model and 1 by the polluted one\n";
  if (attack_inputs.empty()) {
    std::cout << "no witness inputs found; increase --seeds\n";
    return 1;
  }

  const auto result = DetectPollutedSamples(polluted_train, /*polluted_label=*/1,
                                            attack_inputs, polluted,
                                            /*neighbors_per_test=*/20);
  TablePrinter table({"Flagged", "Precision", "Recall", "Paper precision"});
  table.AddRow({std::to_string(result.flagged.size()),
                TablePrinter::Percent(result.precision),
                TablePrinter::Percent(result.recall), "95.6%"});
  std::cout << table.ToString()
            << "Expected shape: flagged samples are overwhelmingly the truly\n"
               "polluted ones (high precision).\n";
  return 0;
}

}  // namespace
}  // namespace dx

int main(int argc, char** argv) { return dx::Run(argc, argv); }

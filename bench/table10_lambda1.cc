// Table 10: "The variation in DeepXplore runtime (in seconds) while
// generating the first difference-inducing input for the tested DNNs with
// different λ1" — λ1 ∈ {0.5, 1, 2, 3}, 10-run average per dataset.
#include <algorithm>
#include <iostream>

#include "bench/bench_common.h"
#include "src/util/table.h"

namespace dx {
namespace {

int Run(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  args.runs = std::min(args.runs, 3);  // Each run scans up to 8 seeds per cell.
  bench::PrintHeader("Table 10", "time to first difference vs lambda1", args);
  const std::vector<float> lambdas = {0.5f, 1.0f, 2.0f, 3.0f};

  TablePrinter table({"Dataset", "l1=0.5", "l1=1", "l1=2", "l1=3"});
  for (const Domain domain : AllDomains()) {
    std::vector<Model> models = ModelZoo::TrainedDomain(domain);
    const auto constraint = bench::DefaultConstraint(domain);
    const std::vector<Tensor> pool = bench::SeedPool(domain, args.seeds);
    std::vector<std::string> row = {DomainName(domain)};
    for (const float l1 : lambdas) {
      DeepXploreConfig config = bench::DefaultConfig(domain);
      config.lambda1 = l1;
      config.rng_seed = 901;
      const double secs =
          bench::MeanTimeToFirstDifference(models, *constraint, config, pool, args.runs);
      row.push_back(TablePrinter::Num(secs, 3) + " s");
    }
    table.AddRow(std::move(row));
  }
  std::cout << table.ToString()
            << "Paper shape: optimal lambda1 is dataset-dependent (MNIST/VirusTotal\n"
               "prefer larger lambda1 — push the deviator harder; Driving/ImageNet\n"
               "have a shallow interior optimum).\n";
  return 0;
}

}  // namespace
}  // namespace dx

int main(int argc, char** argv) { return dx::Run(argc, argv); }

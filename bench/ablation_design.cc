// Ablation study of the reproduction's design choices (DESIGN.md §5):
//
//  A. Gradient RMS-normalization on/off — without it the raw gradient of a
//     saturated softmax vanishes and the fixed step size s stops meaning
//     anything (the reference implementation normalizes; the paper does not
//     discuss it).
//  B. Occlusion-rectangle placement: greedy max-gradient-mass vs random —
//     the paper only says DeepXplore is "free to choose any values of i, j".
//  C. Coverage objective weight λ2 = 0 vs the default — complements Table 5
//     with the time-to-first-difference view.
//
// All cells measure difference-inducing yield and mean time-to-first over the
// MNIST and Driving stand-ins.
#include <iostream>

#include "bench/bench_common.h"
#include "src/constraints/image_constraints.h"
#include "src/util/table.h"

namespace dx {
namespace {

struct CellResult {
  int diffs = 0;
  double seconds = 0.0;
};

CellResult RunCell(std::vector<Model>& models, const Constraint& constraint,
                   DeepXploreConfig config, const std::vector<Tensor>& seeds) {
  config.rng_seed = 2024;
  DeepXplore engine(bench::Pointers(models), &constraint, config);
  const RunStats stats = engine.Run(seeds, RunOptions{});
  return {static_cast<int>(stats.tests.size()), stats.seconds};
}

std::string Fmt(const CellResult& r, int seeds) {
  return std::to_string(r.diffs) + "/" + std::to_string(seeds) + " in " +
         TablePrinter::Num(r.seconds, 1) + "s";
}

int Run(int argc, char** argv) {
  const bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintHeader("Ablation", "design choices: gradient norm, placement, coverage",
                     args);
  const int n = std::min(args.seeds, 60);

  // A: gradient normalization (MNIST, lighting).
  {
    std::vector<Model> models = ModelZoo::TrainedDomain(Domain::kMnist);
    const auto constraint = bench::DefaultConstraint(Domain::kMnist);
    const auto seeds = bench::SeedPool(Domain::kMnist, n);
    TablePrinter table({"Gradient scaling", "Diffs found"});
    DeepXploreConfig on = bench::DefaultConfig(Domain::kMnist);
    DeepXploreConfig off = on;
    off.normalize_gradient = false;
    table.AddRow({"RMS-normalized (default)", Fmt(RunCell(models, *constraint, on, seeds), n)});
    table.AddRow({"raw gradient", Fmt(RunCell(models, *constraint, off, seeds), n)});
    std::cout << "A. gradient normalization (MNIST, lighting):\n" << table.ToString();
    std::cout << "Expected: raw gradients find far fewer differences — saturated\n"
                 "softmax gradients are too small for a fixed step.\n\n";
  }

  // B: occlusion placement (Driving).
  {
    std::vector<Model> models = ModelZoo::TrainedDomain(Domain::kDriving);
    const auto seeds = bench::SeedPool(Domain::kDriving, n);
    DeepXploreConfig config = bench::DefaultConfig(Domain::kDriving);
    config.step = 25.0f / 255.0f;
    TablePrinter table({"Rectangle placement", "Diffs found"});
    const OcclusionConstraint greedy(10, 10,
                                     OcclusionConstraint::Placement::kMaxGradientMass);
    const OcclusionConstraint random(10, 10, OcclusionConstraint::Placement::kRandom);
    table.AddRow({"max-gradient-mass (default)", Fmt(RunCell(models, greedy, config, seeds), n)});
    table.AddRow({"random per iteration", Fmt(RunCell(models, random, config, seeds), n)});
    std::cout << "B. occlusion placement (Driving, 10x10 rectangle):\n" << table.ToString();
    std::cout << "Expected: greedy placement needs fewer iterations per difference.\n\n";
  }

  // C: coverage objective weight (MNIST).
  {
    std::vector<Model> models = ModelZoo::TrainedDomain(Domain::kMnist);
    const auto constraint = bench::DefaultConstraint(Domain::kMnist);
    const auto seeds = bench::SeedPool(Domain::kMnist, n);
    TablePrinter table({"lambda2", "Diffs found"});
    for (const float l2 : {0.0f, 0.1f, 1.0f}) {
      DeepXploreConfig config = bench::DefaultConfig(Domain::kMnist);
      config.lambda2 = l2;
      table.AddRow({TablePrinter::Num(l2), Fmt(RunCell(models, *constraint, config, seeds), n)});
    }
    std::cout << "C. coverage weight lambda2 (MNIST):\n" << table.ToString();
    std::cout << "Expected: small positive lambda2 costs little yield while (per\n"
                 "Table 5) buying diversity; large lambda2 trades diffs for coverage.\n";
  }
  return 0;
}

}  // namespace
}  // namespace dx

int main(int argc, char** argv) { return dx::Run(argc, argv); }

// Table 6: "Comparison of code coverage and neuron coverage for 10 randomly
// selected inputs from the original test set of each DNN."
//
// Code coverage = statement coverage of the inference interpreter
// (OpCoverage); neuron coverage uses t = 0.75 with per-layer min-max scaling,
// exactly the paper's §7.1 protocol. The expected shape: code coverage is
// 100% everywhere after even one input, neuron coverage stays far below.
#include <iostream>

#include "bench/bench_common.h"
#include "src/baselines/random_testing.h"
#include "src/coverage/neuron_coverage.h"
#include "src/coverage/op_coverage.h"
#include "src/util/rng.h"
#include "src/util/table.h"

namespace dx {
namespace {

int Run(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintHeader("Table 6", "code coverage vs neuron coverage, 10 random inputs", args);

  TablePrinter table({"Dataset", "Code cov C1", "Code cov C2", "Code cov C3",
                      "Neuron cov C1", "Neuron cov C2", "Neuron cov C3"});
  bool shape_holds = true;
  for (const Domain domain : AllDomains()) {
    std::vector<std::string> row = {DomainName(domain)};
    std::vector<std::string> neuron_cells;
    Rng rng(42);
    const Dataset& test = ModelZoo::TestSet(domain);
    const auto inputs = RandomInputs(test, 10, rng);
    for (const std::string& name : DomainModelNames(domain)) {
      const Model model = ModelZoo::Trained(name);
      OpCoverage code(model);
      CoverageOptions opts;
      opts.threshold = 0.75f;
      opts.scale_per_layer = true;
      NeuronCoverageTracker neurons(model, opts);
      for (const Tensor& x : inputs) {
        code.RecordForward(model, x);
        neurons.Update(model, model.Forward(x));
      }
      row.push_back(TablePrinter::Percent(code.Coverage(), 0));
      neuron_cells.push_back(TablePrinter::Percent(neurons.Coverage()));
      shape_holds = shape_holds && code.Coverage() == 1.0f && neurons.Coverage() < 0.75f;
    }
    for (auto& cell : neuron_cells) {
      row.push_back(std::move(cell));
    }
    table.AddRow(std::move(row));
  }
  std::cout << table.ToString()
            << "Paper: code coverage 100% everywhere; neuron coverage 0.3%-33.1%\n"
               "(model- and dataset-dependent). Shape check: "
            << (shape_holds ? "PASS" : "MISMATCH") << "\n";
  return 0;
}

}  // namespace
}  // namespace dx

int main(int argc, char** argv) { return dx::Run(argc, argv); }

// Shared infrastructure for the per-table/figure bench binaries.
//
// Every bench reproduces one table or figure from the paper. Scale knobs:
//   --seeds N   seeds per run (default kDefaultSeeds; the paper uses 2000 —
//               pass --seeds 2000 to match at ~10-100x the runtime)
//   --runs N    repetitions for averaged timings (default 10, as the paper)
//   DEEPXPLORE_FAST=1  shrinks the model zoo (see src/models/zoo.h)
#ifndef DX_BENCH_BENCH_COMMON_H_
#define DX_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "src/constraints/constraint.h"
#include "src/core/deepxplore.h"
#include "src/core/session.h"
#include "src/models/zoo.h"

namespace dx::bench {

inline constexpr int kDefaultSeeds = 100;

struct BenchArgs {
  int seeds = kDefaultSeeds;
  int runs = 10;
};

BenchArgs ParseArgs(int argc, char** argv);

// Prints the bench banner: which table/figure, and the scale caveat.
void PrintHeader(const std::string& experiment, const std::string& description,
                 const BenchArgs& args);

// The domain's default constraint, from its DomainSpec (lighting for the
// vision domains, the feature rules for the malware domains, ...). The enum
// overloads are the deprecated pre-registry spelling; both key any
// registered domain through src/core/domain.h.
std::unique_ptr<Constraint> DefaultConstraint(Domain domain);
std::unique_ptr<Constraint> DefaultConstraint(const std::string& domain_key);

// Table 2's per-domain hyperparameters (λ1, λ2, s, t), from the DomainSpec.
DeepXploreConfig DefaultConfig(Domain domain);
DeepXploreConfig DefaultConfig(const std::string& domain_key);

// Session wiring over the domain's Table 2 defaults: named coverage metric
// and worker count, joint objective, round-robin scheduling.
SessionConfig DefaultSessionConfig(Domain domain, const std::string& metric, int workers);
SessionConfig DefaultSessionConfig(const std::string& domain_key, const std::string& metric,
                                   int workers);

// Human-readable hyperparameter string for table rows, e.g. "1 / 0.1 / 10 / 0".
std::string HyperparamString(const DeepXploreConfig& config, Domain domain);

// First n test-set inputs of the domain (deterministic seed pool).
std::vector<Tensor> SeedPool(Domain domain, int n);
std::vector<Tensor> SeedPool(const std::string& domain_key, int n);

// Raw pointers into a trained-model vector.
std::vector<Model*> Pointers(std::vector<Model>& models);

// Directory for generated artifacts (images); created on demand.
std::string ArtifactDir();

// Mean wall-clock seconds until the first difference-inducing input, over
// `runs` runs with distinct engine seeds and disjoint seed-pool offsets (the
// metric of Tables 9, 10, and 11).
double MeanTimeToFirstDifference(std::vector<Model>& models, const Constraint& constraint,
                                 const DeepXploreConfig& config,
                                 const std::vector<Tensor>& pool, int runs);

}  // namespace dx::bench

#endif  // DX_BENCH_BENCH_COMMON_H_

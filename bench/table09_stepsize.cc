// Table 9: "The variation in DeepXplore runtime (in seconds) while
// generating the first difference-inducing input for the tested DNNs with
// different step size choice" — s sweep, 10-run average per dataset.
//
// The s values are the paper's {0.01, 0.1, 1, 10, 100} interpreted in each
// domain's native step units (for the vision domains the paper's s is in
// 0-255 pixel space; our pixels are [0,1], so s is divided by 255).
#include <algorithm>
#include <iostream>

#include "bench/bench_common.h"
#include "src/util/table.h"

namespace dx {
namespace {

int Run(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  args.runs = std::min(args.runs, 3);  // Each run scans up to 8 seeds per cell.
  bench::PrintHeader("Table 9", "time to first difference vs step size s", args);
  const std::vector<float> steps = {0.01f, 0.1f, 1.0f, 10.0f, 100.0f};

  TablePrinter table({"Dataset", "s=0.01", "s=0.1", "s=1", "s=10", "s=100"});
  for (const Domain domain : AllDomains()) {
    if (domain == Domain::kDrebin) {
      // Table 2/9: Drebin steps are discrete feature flips (s = N/A); the
      // paper reports a constant 7.65 s across the sweep. We still run it to
      // confirm invariance to s.
    }
    std::vector<Model> models = ModelZoo::TrainedDomain(domain);
    const auto constraint = bench::DefaultConstraint(domain);
    const std::vector<Tensor> pool = bench::SeedPool(domain, args.seeds);
    const bool vision = domain == Domain::kMnist || domain == Domain::kImageNet ||
                        domain == Domain::kDriving;
    std::vector<std::string> row = {DomainName(domain)};
    for (const float s : steps) {
      DeepXploreConfig config = bench::DefaultConfig(domain);
      config.step = vision ? s / 255.0f : s;
      config.rng_seed = 900;
      const double secs =
          bench::MeanTimeToFirstDifference(models, *constraint, config, pool, args.runs);
      row.push_back(TablePrinter::Num(secs, 3) + " s");
    }
    table.AddRow(std::move(row));
  }
  std::cout << table.ToString()
            << "Paper shape: the optimum is dataset-dependent and interior (e.g.\n"
               "ImageNet fastest near s=10, MNIST near s=0.01-0.1); extreme steps\n"
               "oscillate or crawl. Drebin is s-invariant (discrete flips).\n";
  return 0;
}

}  // namespace
}  // namespace dx

int main(int argc, char** argv) { return dx::Run(argc, argv); }

// Table 2: "Number of difference-inducing inputs found by DeepXplore for
// each tested DNN" with the per-domain hyperparameters (λ1 / λ2 / s / t).
//
// Each DNN row targets that model as the deviator (forced j) over the seed
// pool, exactly reproducing the per-DNN accounting of the paper. The paper
// uses 2000 seeds; pass --seeds 2000 to match.
#include <algorithm>
#include <iostream>
#include <map>

#include "bench/bench_common.h"
#include "src/util/table.h"
#include "src/util/timer.h"

namespace dx {
namespace {

const std::map<std::string, int>& PaperCounts() {
  static const std::map<std::string, int> counts = {
      {"MNI_C1", 1073}, {"MNI_C2", 1968}, {"MNI_C3", 827},  {"IMG_C1", 1969},
      {"IMG_C2", 1976}, {"IMG_C3", 1996}, {"DRV_C1", 1720}, {"DRV_C2", 1866},
      {"DRV_C3", 1930}, {"PDF_C1", 1103}, {"PDF_C2", 789},  {"PDF_C3", 1253},
      {"APP_C1", 2000}, {"APP_C2", 2000}, {"APP_C3", 2000},
  };
  return counts;
}

int Run(int argc, char** argv) {
  const bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintHeader("Table 2",
                     "difference-inducing inputs per DNN (forced-deviator runs)", args);
  TablePrinter table({"DNN name", "Hyperparams (l1/l2/s/t)", "# Diffs found",
                      "# Diffs (paper, 2000 seeds)", "Diff rate"});
  for (const Domain domain : AllDomains()) {
    std::vector<Model> models = ModelZoo::TrainedDomain(domain);
    const auto names = DomainModelNames(domain);
    const auto constraint = bench::DefaultConstraint(domain);
    // The ImageNet stand-in costs ~10x more per iteration; scale its pool.
    const int domain_seeds =
        domain == Domain::kImageNet ? std::min(args.seeds, 30) : args.seeds;
    const std::vector<Tensor> seeds = bench::SeedPool(domain, domain_seeds);
    for (int target = 0; target < static_cast<int>(models.size()); ++target) {
      DeepXploreConfig config = bench::DefaultConfig(domain);
      config.forced_target_model = target;
      config.rng_seed = 1000 + static_cast<uint64_t>(target);
      DeepXplore engine(bench::Pointers(models), constraint.get(), config);
      RunOptions opts;
      const RunStats stats = engine.Run(seeds, opts);
      table.AddRow({names[static_cast<size_t>(target)],
                    bench::HyperparamString(config, domain),
                    std::to_string(stats.tests.size()),
                    std::to_string(PaperCounts().at(names[static_cast<size_t>(target)])),
                    TablePrinter::Percent(static_cast<double>(stats.tests.size()) /
                                          std::max(1, stats.seeds_tried))});
    }
  }
  std::cout << table.ToString()
            << "Expected shape: every DNN yields difference-inducing inputs from a\n"
               "large fraction of seeds; the Drebin MLPs saturate fastest (discrete\n"
               "feature flips), matching the paper's 2000/2000 rows.\n";
  return 0;
}

}  // namespace
}  // namespace dx

int main(int argc, char** argv) { return dx::Run(argc, argv); }

// Session worker-scaling bench: tests/sec and mean coverage at 1/2/4/8
// workers on the synthetic-digits (MNIST) model pair.
//
// Because the session's batch-synchronized parallel runner is deterministic
// for a fixed rng seed regardless of the worker count, every row generates
// the *same* difference-inducing inputs — only the wall clock changes, so
// the speedup column isolates the runner overhead.
//
// Emits a JSON record (stdout and <artifact dir>/session_scaling.json) so
// successive PRs can track the perf trajectory; the checked-in baseline
// lives at bench/baselines/session_scaling.json.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/constraints/image_constraints.h"
#include "src/core/session.h"
#include "src/util/table.h"

namespace {

using namespace dx;
using namespace dx::bench;

struct ScalingRow {
  int workers = 1;
  int tests = 0;
  double seconds = 0.0;
  double tests_per_sec = 0.0;
  float mean_coverage = 0.0f;
  double speedup = 1.0;
};

std::string ToJson(const std::vector<ScalingRow>& rows, int seeds) {
  std::ostringstream out;
  out << "{\n"
      << "  \"bench\": \"session_scaling\",\n"
      << "  \"domain\": \"mnist\",\n"
      << "  \"models\": [\"MNI_C1\", \"MNI_C2\"],\n"
      << "  \"metric\": \"neuron\",\n"
      << "  \"seeds\": " << seeds << ",\n"
      // Speedups are bounded by the host cores; record them so later PRs
      // compare like with like.
      << "  \"host_cores\": " << std::thread::hardware_concurrency() << ",\n"
      << "  \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const ScalingRow& r = rows[i];
    out << "    {\"workers\": " << r.workers << ", \"tests\": " << r.tests
        << ", \"seconds\": " << r.seconds << ", \"tests_per_sec\": " << r.tests_per_sec
        << ", \"mean_coverage\": " << r.mean_coverage << ", \"speedup\": " << r.speedup
        << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv);
  PrintHeader("Session scaling",
              "tests/sec and coverage vs. worker count (MNIST pair)", args);

  std::vector<Model> models = ModelZoo::TrainedDomain(Domain::kMnist);
  std::vector<Model*> pair = {&models[0], &models[1]};
  LightingConstraint constraint;
  const std::vector<Tensor> pool = SeedPool(Domain::kMnist, args.seeds);

  std::vector<ScalingRow> rows;
  for (const int workers : {1, 2, 4, 8}) {
    SessionConfig config = DefaultSessionConfig(Domain::kMnist, "neuron", workers);
    Session session(pair, &constraint, config);
    const RunStats stats = session.Run(pool, RunOptions{});
    ScalingRow row;
    row.workers = workers;
    row.tests = static_cast<int>(stats.tests.size());
    row.seconds = stats.seconds;
    row.tests_per_sec =
        stats.seconds > 0.0 ? static_cast<double>(row.tests) / stats.seconds : 0.0;
    row.mean_coverage = stats.mean_coverage;
    row.speedup = !rows.empty() && row.seconds > 0.0 ? rows[0].seconds / row.seconds : 1.0;
    rows.push_back(row);
    std::cerr << "workers=" << workers << ": " << row.tests << " tests in "
              << row.seconds << " s\n";
  }

  TablePrinter table({"Workers", "Tests", "Seconds", "Tests/sec", "Mean coverage",
                      "Speedup vs 1"});
  for (const ScalingRow& r : rows) {
    table.AddRow({std::to_string(r.workers), std::to_string(r.tests),
                  TablePrinter::Num(r.seconds, 2), TablePrinter::Num(r.tests_per_sec, 2),
                  TablePrinter::Percent(r.mean_coverage),
                  TablePrinter::Num(r.speedup, 2) + "x"});
  }
  std::cout << table.ToString();

  // Determinism check: every worker count must find the same tests.
  bool consistent = true;
  for (const ScalingRow& r : rows) {
    consistent = consistent && r.tests == rows[0].tests;
  }
  if (!consistent) {
    std::cerr << "ERROR: test counts differ across worker counts\n";
    return 1;
  }

  const std::string json = ToJson(rows, args.seeds);
  std::cout << json;
  const std::string path = ArtifactDir() + "/session_scaling.json";
  std::ofstream file(path);
  file << json;
  std::cout << "json written to " << path << "\n";
  return 0;
}

// Table 11: "The variation in DeepXplore runtime (in seconds) while
// generating the first difference-inducing input for the tested DNNs with
// different λ2" — λ2 ∈ {0.5, 1, 2, 3}, 10-run average per dataset.
#include <algorithm>
#include <iostream>

#include "bench/bench_common.h"
#include "src/util/table.h"

namespace dx {
namespace {

int Run(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  args.runs = std::min(args.runs, 3);  // Each run scans up to 8 seeds per cell.
  bench::PrintHeader("Table 11", "time to first difference vs lambda2", args);
  const std::vector<float> lambdas = {0.5f, 1.0f, 2.0f, 3.0f};

  TablePrinter table({"Dataset", "l2=0.5", "l2=1", "l2=2", "l2=3"});
  for (const Domain domain : AllDomains()) {
    std::vector<Model> models = ModelZoo::TrainedDomain(domain);
    const auto constraint = bench::DefaultConstraint(domain);
    const std::vector<Tensor> pool = bench::SeedPool(domain, args.seeds);
    std::vector<std::string> row = {DomainName(domain)};
    for (const float l2 : lambdas) {
      DeepXploreConfig config = bench::DefaultConfig(domain);
      config.lambda2 = l2;
      config.rng_seed = 902;
      const double secs =
          bench::MeanTimeToFirstDifference(models, *constraint, config, pool, args.runs);
      row.push_back(TablePrinter::Num(secs, 3) + " s");
    }
    table.AddRow(std::move(row));
  }
  std::cout << table.ToString()
            << "Paper shape: lambda2 = 0.5 is (near-)optimal everywhere — diverting\n"
               "more of the gradient budget to covering neurons slows down finding\n"
               "the first difference.\n";
  return 0;
}

}  // namespace
}  // namespace dx

int main(int argc, char** argv) { return dx::Run(argc, argv); }

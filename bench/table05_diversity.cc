// Table 5: "The increase in diversity (L1-distance) in the difference-
// inducing inputs found by DeepXplore while using neuron coverage as part of
// the optimization goal" — three repetitions on MNIST with λ2 = 0 vs λ2 = 1,
// reporting average L1 diversity, neuron coverage at t = 0.25, and the raw
// number of differences.
#include <iostream>

#include "bench/bench_common.h"
#include "src/analysis/diversity.h"
#include "src/util/table.h"

namespace dx {
namespace {

struct ExpResult {
  float diversity = 0.0f;
  float coverage = 0.0f;
  int diffs = 0;
};

ExpResult RunOnce(std::vector<Model>& models, const Constraint& constraint,
                  const std::vector<Tensor>& seeds, float lambda2, uint64_t rng_seed) {
  DeepXploreConfig config = bench::DefaultConfig(Domain::kMnist);
  config.lambda2 = lambda2;
  config.coverage.threshold = 0.25f;
  config.rng_seed = rng_seed;
  DeepXplore engine(bench::Pointers(models), &constraint, config);
  const RunStats stats = engine.Run(seeds, RunOptions{});
  ExpResult result;
  // L1 over [0,1] pixels; the paper's absolute scale differs (0-255 pixels,
  // different seed pool) — the with/without-coverage *increase* is the claim.
  result.diversity = AverageSeedL1Diversity(stats.tests, seeds);
  result.coverage = engine.MeanCoverage();
  result.diffs = static_cast<int>(stats.tests.size());
  return result;
}

int Run(int argc, char** argv) {
  const bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintHeader(
      "Table 5", "diversity of MNIST difference-inducing inputs, lambda2 = 0 vs 1", args);
  std::vector<Model> models = ModelZoo::TrainedDomain(Domain::kMnist);
  const auto constraint = bench::DefaultConstraint(Domain::kMnist);
  const std::vector<Tensor> seeds = bench::SeedPool(Domain::kMnist, args.seeds);

  TablePrinter table({"Exp. #", "Avg. diversity (l2=0)", "NC (l2=0)", "# Diffs (l2=0)",
                      "Avg. diversity (l2=1)", "NC (l2=1)", "# Diffs (l2=1)"});
  float div_gain = 0.0f;
  for (int exp = 1; exp <= 3; ++exp) {
    const ExpResult without =
        RunOnce(models, *constraint, seeds, 0.0f, 100 + static_cast<uint64_t>(exp));
    const ExpResult with =
        RunOnce(models, *constraint, seeds, 1.0f, 100 + static_cast<uint64_t>(exp));
    div_gain += with.diversity - without.diversity;
    table.AddRow({std::to_string(exp), TablePrinter::Num(without.diversity, 1),
                  TablePrinter::Percent(without.coverage), std::to_string(without.diffs),
                  TablePrinter::Num(with.diversity, 1),
                  TablePrinter::Percent(with.coverage), std::to_string(with.diffs)});
  }
  std::cout << table.ToString()
            << "Paper (2000 seeds): diversity 237.9->283.3 / 194.6->253.2 / 170.8->182.7,\n"
               "NC +1-2 points, fewer raw diffs with coverage on.\n"
            << "Shape check: lambda2 = 1 increased average diversity by "
            << TablePrinter::Num(div_gain / 3.0f, 1) << " L1 units on average; "
            << (div_gain > 0.0f ? "PASS" : "MISMATCH") << "\n";
  return 0;
}

}  // namespace
}  // namespace dx

int main(int argc, char** argv) { return dx::Run(argc, argv); }

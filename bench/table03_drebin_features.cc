// Table 3: "The features added to the manifest file by DeepXplore for
// generating two sample malware inputs which Android app classifiers
// incorrectly mark as benign."
//
// Picks malware seeds the whole ensemble agrees are malware, runs the engine
// with the Drebin add-only manifest constraint until one model flips to
// benign, and prints the manifest features that were added (before=0 ->
// after=1), top-3 first — the paper's exact presentation.
#include <algorithm>
#include <iostream>

#include "bench/bench_common.h"
#include "src/data/drebin.h"
#include "src/util/table.h"

namespace dx {
namespace {

int Run(int argc, char** argv) {
  const bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintHeader("Table 3", "manifest features added for malware->benign evasions",
                     args);

  std::vector<Model> models = ModelZoo::TrainedDomain(Domain::kDrebin);
  const auto constraint = bench::DefaultConstraint(Domain::kDrebin);
  DeepXploreConfig config = bench::DefaultConfig(Domain::kDrebin);
  config.max_iterations_per_seed = 200;
  config.rng_seed = 77;
  DeepXplore engine(bench::Pointers(models), constraint.get(), config);

  const Dataset& test = ModelZoo::TestSet(Domain::kDrebin);
  int produced = 0;
  for (int i = 0; i < test.size() && produced < 2; ++i) {
    if (test.Label(i) != kDrebinMalwareClass) {
      continue;
    }
    const Tensor& seed = test.inputs[static_cast<size_t>(i)];
    // The evasion scenario: everyone starts by (correctly) saying malware.
    bool all_malware = true;
    for (const Model& m : models) {
      all_malware = all_malware && m.PredictClass(seed) == kDrebinMalwareClass;
    }
    if (!all_malware) {
      continue;
    }
    const auto result = engine.GenerateFromSeed(seed, i);
    if (!result.has_value()) {
      continue;
    }
    // Some model now calls this app benign.
    bool any_benign = false;
    for (const int label : result->labels) {
      any_benign = any_benign || label == kDrebinBenignClass;
    }
    if (!any_benign) {
      continue;
    }
    ++produced;
    std::vector<int> added;
    for (int f = 0; f < kDrebinFeatureCount; ++f) {
      if (seed[f] == 0.0f && result->input[f] == 1.0f) {
        added.push_back(f);
      }
    }
    std::cout << "input " << produced << " (seed #" << i << ", " << added.size()
              << " manifest feature(s) added, " << result->iterations
              << " iterations, deviating model "
              << DomainModelNames(Domain::kDrebin)[static_cast<size_t>(
                     result->deviating_model)]
              << "):\n";
    TablePrinter table({"feature", "before", "after"});
    const size_t top = std::min<size_t>(3, added.size());
    for (size_t k = 0; k < top; ++k) {
      table.AddRow({DrebinFeatureName(added[k]), "0", "1"});
    }
    std::cout << table.ToString();
  }
  if (produced == 0) {
    std::cout << "no malware->benign evasion found (increase --seeds)\n";
    return 1;
  }
  std::cout << "Every modified feature lives in the manifest and was only ever\n"
               "added (0 -> 1), matching the paper's constraint semantics.\n";
  return 0;
}

}  // namespace
}  // namespace dx

int main(int argc, char** argv) { return dx::Run(argc, argv); }

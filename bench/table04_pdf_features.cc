// Table 4: "The top-3 most in(de)cremented features for generating two
// sample malware inputs which PDF classifiers incorrectly mark as benign."
//
// Same protocol as Table 3 for the Contagio/VirusTotal stand-in: malicious
// seed PDFs, per-feature Šrndic-rule constraint, report the three features
// whose raw counts moved the most (before -> after).
#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench/bench_common.h"
#include "src/data/pdf.h"
#include "src/util/table.h"

namespace dx {
namespace {

int Run(int argc, char** argv) {
  const bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintHeader("Table 4", "most-changed PDF features for malware->benign evasions",
                     args);

  std::vector<Model> models = ModelZoo::TrainedDomain(Domain::kPdf);
  const auto constraint = bench::DefaultConstraint(Domain::kPdf);
  DeepXploreConfig config = bench::DefaultConfig(Domain::kPdf);
  config.max_iterations_per_seed = 300;
  config.rng_seed = 78;
  DeepXplore engine(bench::Pointers(models), constraint.get(), config);

  const Dataset& test = ModelZoo::TestSet(Domain::kPdf);
  int produced = 0;
  for (int i = 0; i < test.size() && produced < 2; ++i) {
    if (test.Label(i) != kPdfMalwareClass) {
      continue;
    }
    const Tensor& seed = test.inputs[static_cast<size_t>(i)];
    bool all_malware = true;
    for (const Model& m : models) {
      all_malware = all_malware && m.PredictClass(seed) == kPdfMalwareClass;
    }
    if (!all_malware) {
      continue;
    }
    const auto result = engine.GenerateFromSeed(seed, i);
    if (!result.has_value()) {
      continue;
    }
    bool any_benign = false;
    for (const int label : result->labels) {
      any_benign = any_benign || label == kPdfBenignClass;
    }
    if (!any_benign) {
      continue;
    }
    ++produced;
    // Rank features by |raw delta|.
    std::vector<std::pair<float, int>> deltas;
    for (int f = 0; f < kPdfFeatureCount; ++f) {
      const float before = PdfRawValue(f, seed[f]);
      const float after = PdfRawValue(f, result->input[f]);
      if (before != after) {
        deltas.emplace_back(std::abs(after - before), f);
      }
    }
    std::sort(deltas.begin(), deltas.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    std::cout << "input " << produced << " (seed #" << i << ", " << deltas.size()
              << " feature(s) changed, " << result->iterations << " iterations):\n";
    TablePrinter table({"feature", "before", "after"});
    for (size_t k = 0; k < std::min<size_t>(3, deltas.size()); ++k) {
      const int f = deltas[k].second;
      table.AddRow({PdfFeatureSpecs()[static_cast<size_t>(f)].name,
                    TablePrinter::Num(PdfRawValue(f, seed[f]), 0),
                    TablePrinter::Num(PdfRawValue(f, result->input[f]), 0)});
    }
    std::cout << table.ToString();
  }
  if (produced == 0) {
    std::cout << "no malware->benign evasion found (increase --seeds)\n";
    return 1;
  }
  std::cout << "Expected shape (paper's Table 4): structural counters like size /\n"
               "count_font / count_endobj grow; frozen features never move.\n";
  return 0;
}

}  // namespace
}  // namespace dx

int main(int argc, char** argv) { return dx::Run(argc, argv); }

// Table 1: "Details of the DNNs and datasets used to evaluate DeepXplore".
//
// Prints, per zoo model: neuron count, architecture, the accuracy the paper
// reported for its (full-scale) counterpart, and the accuracy our trained
// stand-in reaches on its synthetic dataset.
#include <iostream>
#include <map>

#include "bench/bench_common.h"
#include "src/models/trainer.h"
#include "src/util/table.h"

namespace dx {
namespace {

const std::map<std::string, std::string>& PaperAccuracies() {
  static const std::map<std::string, std::string> acc = {
      {"MNI_C1", "98.3%"},    {"MNI_C2", "98.9%"},   {"MNI_C3", "99.05%"},
      {"IMG_C1", "92.6%**"},  {"IMG_C2", "92.7%**"}, {"IMG_C3", "96.43%**"},
      {"DRV_C1", "99.91%#"},  {"DRV_C2", "99.94%#"}, {"DRV_C3", "99.96%#"},
      {"PDF_C1", "98.5%-"},   {"PDF_C2", "98.5%-"},  {"PDF_C3", "98.5%-"},
      {"APP_C1", "98.92%"},   {"APP_C2", "96.79%"},  {"APP_C3", "92.66%"},
  };
  return acc;
}

int Run() {
  bench::BenchArgs args;
  bench::PrintHeader("Table 1", "datasets and DNNs (zoo summary + accuracies)", args);
  TablePrinter table({"Dataset", "DNN name", "Arch (ours)", "Paper arch", "# Neurons",
                      "# Params", "Paper acc.", "Our acc."});
  for (const ModelInfo& info : ZooModels()) {
    const Model model = ModelZoo::Trained(info.name);
    const Dataset& test = ModelZoo::TestSet(info.domain);
    const float acc = Trainer::PaperAccuracy(model, test);
    // Registered out-of-paper domains (speech, tabular, ...) appear in the
    // zoo but have no Table-1 counterpart to quote.
    const auto paper = PaperAccuracies().find(info.name);
    table.AddRow({DomainName(info.domain), info.name, info.arch, info.paper_arch,
                  std::to_string(model.TotalNeurons()), std::to_string(model.NumParams()),
                  paper != PaperAccuracies().end() ? paper->second : "n/a (not in paper)",
                  TablePrinter::Percent(acc, 2)});
  }
  std::cout << table.ToString()
            << "** top-5 accuracy in the paper (pretrained ImageNet nets)\n"
               "#  1 - MSE, steering angle is continuous\n"
               "-  SVM accuracy reported by Srndic et al.\n"
               "Architectures are faithful down-scalings trained on synthetic\n"
               "stand-in datasets (see DESIGN.md for the substitution table).\n";
  return 0;
}

}  // namespace
}  // namespace dx

int main() { return dx::Run(); }

// Driving scenario (the paper's Figure 1): three DAVE-style self-driving
// models cross-reference each other. DeepXplore perturbs road scenes with an
// occlusion rectangle until the steering decisions disagree — the kind of
// corner case that crashes a car into a guardrail.
//
//   $ ./driving_crossref [num_cases]
//
// Generated scene pairs are written as PPM images into ./example_artifacts.
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "src/constraints/image_constraints.h"
#include "src/core/deepxplore.h"
#include "src/data/road.h"
#include "src/models/zoo.h"
#include "src/util/image_io.h"

namespace {

const char* Direction(float angle) {
  if (angle < -0.05f) return "left";
  if (angle > 0.05f) return "right";
  return "straight";
}

void SavePpm(const std::string& path, const dx::Tensor& img) {
  const int h = img.dim(1);
  const int w = img.dim(2);
  std::vector<float> hwc(static_cast<size_t>(h) * w * 3);
  for (int c = 0; c < 3; ++c) {
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        hwc[(static_cast<size_t>(y) * w + x) * 3 + c] =
            img[(static_cast<int64_t>(c) * h + y) * w + x];
      }
    }
  }
  dx::WriteImage(path, hwc, h, w, 3);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dx;
  const int wanted = argc > 1 ? std::atoi(argv[1]) : 2;

  std::vector<Model> models = ModelZoo::TrainedDomain(Domain::kDriving);
  std::vector<Model*> ptrs;
  for (Model& m : models) {
    ptrs.push_back(&m);
  }

  // An attacker-style occlusion: a 10x10 patch anywhere on the camera image.
  OcclusionConstraint constraint(10, 10);
  DeepXploreConfig config;
  config.step = 25.0f / 255.0f;
  config.steering_eps = kSteeringDisagreement;
  config.max_iterations_per_seed = 150;
  DeepXplore engine(ptrs, &constraint, config);

  std::filesystem::create_directories("example_artifacts");
  const Dataset& test = ModelZoo::TestSet(Domain::kDriving);
  int found = 0;
  for (int i = 0; i < test.size() && found < wanted; ++i) {
    const Tensor& seed = test.inputs[static_cast<size_t>(i)];
    const auto result = engine.GenerateFromSeed(seed, i);
    if (!result.has_value()) {
      continue;
    }
    ++found;
    std::cout << "case " << found << " (seed #" << i << ", ground-truth steering "
              << test.Target(i) << "):\n";
    const auto seed_angles = engine.PredictScalars(seed);
    for (size_t k = 0; k < models.size(); ++k) {
      std::cout << "  " << models[k].name() << ": " << Direction(seed_angles[k]) << " ("
                << seed_angles[k] << ")  ->  "
                << Direction(result->outputs[k]) << " (" << result->outputs[k] << ")"
                << (static_cast<int>(k) == result->deviating_model ? "   <-- deviates" : "")
                << "\n";
    }
    const std::string base = "example_artifacts/driving_case" + std::to_string(found);
    SavePpm(base + "_seed.ppm", seed);
    SavePpm(base + "_occluded.ppm", result->input);
    std::cout << "  wrote " << base << "_{seed,occluded}.ppm\n";
  }
  if (found == 0) {
    std::cerr << "no steering disagreement found\n";
    return 1;
  }
  return 0;
}

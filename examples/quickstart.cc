// Quickstart: the smallest end-to-end test-generation session.
//
// Looks up the "mnist" domain in the DomainSpec registry (every domain —
// dataset, model trio, constraints, Table-2 defaults — is a string-keyed
// plug-in; `dxplore --list-domains` enumerates them), loads/trains its three
// models, wires a Session from named plug-ins (coverage metric, objective,
// seed scheduler), runs the joint optimization under the domain's default
// constraint on the batched executor, and prints the first
// difference-inducing input it finds, with coverage statistics.
//
//   $ ./quickstart
//
// (First run trains the three models and caches them under
//  /tmp/deepxplore_model_cache; subsequent runs start instantly.
//  The legacy DeepXplore facade in src/core/deepxplore.h still works for
//  code written against the paper-shaped API.)
#include <iostream>

#include "src/core/domain.h"
#include "src/core/session.h"
#include "src/models/zoo.h"
#include "src/util/image_io.h"

int main() {
  using namespace dx;

  // 1. The domain bundle: swap "mnist" for any registered key ("speech",
  //    "tabular", ...) and the rest of the program works unchanged.
  const DomainSpec& domain = GetDomain("mnist");

  // 2. Three independently trained DNNs for the same task (the oracles).
  std::vector<Model> models = ModelZoo::TrainedDomain(domain.key);
  std::vector<Model*> ptrs;
  for (Model& m : models) {
    ptrs.push_back(&m);
  }
  std::cout << models[0].Summary();

  // 3. The domain's default constraint — for MNIST: only brighten/darken the
  //    whole image. Named variants ("occl", "blackout", ...) come from the
  //    same spec: MakeDomainConstraint(domain, "occl").
  const auto constraint = MakeDomainConstraint(domain, "default");

  // 4. The session: the domain's Table-2 hyperparameters plus the pluggable
  //    components. Swap config.metric to "kmultisection" or "topk", or
  //    config.workers to > 1, without touching the rest of the program.
  SessionConfig config;
  config.engine = domain.engine_defaults;   // λ1, λ2, s from Table 2.
  config.engine.max_iterations_per_seed = 150;
  config.metric = "neuron";        // or "kmultisection", "topk" (--list-metrics)
  config.objective = "joint";      // or "differential", "fgsm", "random"
  config.scheduler = "roundrobin";
  // The executor ascends 8 seeds in lockstep: every iteration is one batched
  // forward pass per model, shared by the objective gradient, the difference
  // check, and the coverage update. Results are bit-identical for any value.
  config.batch_size = 8;
  // Seeds scheduled per sync point. The whole sync batch runs before Run
  // checks max_tests, so keep it small when stopping at the first hit.
  config.sync_interval = 8;
  Session session(ptrs, constraint.get(), config);

  // 5. Seed it with unlabeled test inputs and collect difference-inducing
  //    inputs — no manual labels anywhere. Run() drives the scheduler's seed
  //    stream through the batched executor until a bound is hit.
  const Dataset& test = ModelZoo::TestSet(domain.key);
  RunOptions options;
  options.max_tests = 1;  // Stop at the first difference-inducing input.
  const RunStats stats = session.Run(test.inputs, options);
  if (stats.tests.empty()) {
    std::cerr << "no difference-inducing input found\n";
    return 1;
  }

  const GeneratedTest& found = stats.tests.front();
  std::cout << "\nDifference found from seed #" << found.seed_index << " after "
            << found.iterations << " gradient steps (" << stats.seeds_tried
            << " seeds tried, " << stats.forward_passes << " model forward passes):\n";
  for (size_t k = 0; k < models.size(); ++k) {
    std::cout << "  " << models[k].name() << " predicts "
              << found.labels[static_cast<size_t>(k)]
              << (static_cast<int>(k) == found.deviating_model ? "   <-- deviates\n"
                                                               : "\n");
  }
  std::cout << "\nseed image:\n"
            << AsciiArt(test.inputs[static_cast<size_t>(found.seed_index)].values(), 28, 28,
                        1)
            << "\ngenerated image (same digit, different lighting):\n"
            << AsciiArt(found.input.values(), 28, 28, 1) << "\nmean "
            << session.metric(0).name()
            << " coverage after this test: " << session.MeanCoverage() << "\n";
  return 0;
}

// Quickstart: the smallest end-to-end test-generation session.
//
// Builds/loads three LeNet-family digit classifiers, wires a Session from
// named plug-ins (coverage metric, objective, seed scheduler), runs the
// joint optimization under the lighting constraint, and prints the first
// difference-inducing input it finds, with coverage statistics.
//
//   $ ./quickstart
//
// (First run trains the three models and caches them under
//  /tmp/deepxplore_model_cache; subsequent runs start instantly.
//  The legacy DeepXplore facade in src/core/deepxplore.h still works for
//  code written against the paper-shaped API.)
#include <iostream>

#include "src/constraints/image_constraints.h"
#include "src/core/session.h"
#include "src/models/zoo.h"
#include "src/util/image_io.h"

int main() {
  using namespace dx;

  // 1. Three independently trained DNNs for the same task (the oracles).
  std::vector<Model> models = ModelZoo::TrainedDomain(Domain::kMnist);
  std::vector<Model*> ptrs;
  for (Model& m : models) {
    ptrs.push_back(&m);
  }
  std::cout << models[0].Summary();

  // 2. A domain constraint: only brighten/darken the whole image.
  LightingConstraint constraint;

  // 3. The session: Algorithm 1's hyperparameters plus the pluggable
  //    components. Swap config.metric to "kmultisection" or "topk", or
  //    config.workers to > 1, without touching the rest of the program.
  SessionConfig config;
  config.engine.lambda1 = 2.0f;         // Push the deviator's confidence down.
  config.engine.lambda2 = 0.1f;         // ...while activating uncovered neurons.
  config.engine.step = 10.0f / 255.0f;  // Gradient-ascent step (paper's s = 10).
  config.engine.max_iterations_per_seed = 150;
  config.metric = "neuron";        // or "kmultisection", "topk"
  config.objective = "joint";      // or "differential", "fgsm", "random"
  config.scheduler = "roundrobin";
  Session session(ptrs, &constraint, config);

  // 4. Seed it with unlabeled test inputs and collect difference-inducing
  //    inputs — no manual labels anywhere.
  const Dataset& test = ModelZoo::TestSet(Domain::kMnist);
  for (int i = 0; i < test.size(); ++i) {
    const auto result = session.GenerateFromSeed(test.inputs[static_cast<size_t>(i)], i);
    if (!result.has_value()) {
      continue;
    }
    std::cout << "\nDifference found from seed #" << i << " after " << result->iterations
              << " gradient steps (" << result->seconds << " s):\n";
    for (size_t k = 0; k < models.size(); ++k) {
      std::cout << "  " << models[k].name() << " predicts "
                << result->labels[static_cast<size_t>(k)]
                << (static_cast<int>(k) == result->deviating_model ? "   <-- deviates\n"
                                                                   : "\n");
    }
    std::cout << "\nseed image:\n"
              << AsciiArt(test.inputs[static_cast<size_t>(i)].values(), 28, 28, 1)
              << "\ngenerated image (same digit, different lighting):\n"
              << AsciiArt(result->input.values(), 28, 28, 1)
              << "\nmean " << session.metric(0).name()
              << " coverage after this test: " << session.MeanCoverage() << "\n";
    return 0;
  }
  std::cerr << "no difference-inducing input found\n";
  return 1;
}

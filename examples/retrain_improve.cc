// Retraining scenario (paper §7.3): difference-inducing inputs, auto-labeled
// by majority vote over the ensemble, are appended to the training set and
// fix the weakest model's erroneous behaviors — no human labeling involved.
//
//   $ ./retrain_improve
#include <iostream>

#include "src/analysis/retraining.h"
#include "src/constraints/image_constraints.h"
#include "src/core/deepxplore.h"
#include "src/data/synthetic_digits.h"
#include "src/models/trainer.h"
#include "src/models/zoo.h"
#include "src/util/table.h"

int main() {
  using namespace dx;
  const Dataset& train = ModelZoo::TrainSet(Domain::kMnist);
  const Dataset& test = ModelZoo::TestSet(Domain::kMnist);

  // A deliberately under-trained LeNet-1 (accuracy headroom).
  Model weak = ModelZoo::Build("MNI_C1", 31);
  TrainConfig base_cfg;
  base_cfg.epochs = 2;
  base_cfg.learning_rate = 1.5e-3f;
  Trainer::Fit(&weak, train, base_cfg);
  std::cout << "base accuracy: " << Trainer::Accuracy(weak, test) << "\n";

  // Generate corner cases with the full trio as cross-referencing oracles.
  std::vector<Model> voters = ModelZoo::TrainedDomain(Domain::kMnist);
  std::vector<Model*> voter_ptrs;
  for (Model& m : voters) {
    voter_ptrs.push_back(&m);
  }
  LightingConstraint constraint;
  DeepXploreConfig config;
  config.lambda1 = 2.0f;
  config.step = 10.0f / 255.0f;
  DeepXplore engine(voter_ptrs, &constraint, config);

  const Dataset pool = MakeSyntheticDigits(400, 777);
  std::vector<Tensor> corner_cases;
  for (int i = 0; i < pool.size() && corner_cases.size() < 100; ++i) {
    const auto result = engine.GenerateFromSeed(pool.inputs[static_cast<size_t>(i)], i);
    if (result.has_value()) {
      corner_cases.push_back(result->input);
    }
  }
  std::cout << "generated " << corner_cases.size()
            << " difference-inducing inputs; labeling by majority vote\n";

  const Dataset augmented = AugmentWithVotedLabels(train, corner_cases, voter_ptrs);
  const auto curve = RetrainAccuracyCurve(&weak, augmented, test, 5, 32);

  TablePrinter table({"Retrain epoch", "Test accuracy"});
  for (size_t e = 0; e < curve.size(); ++e) {
    table.AddRow({std::to_string(e), TablePrinter::Percent(curve[e])});
  }
  std::cout << table.ToString();
  std::cout << (curve.back() > curve.front() ? "accuracy improved" : "no improvement")
            << " (+" << TablePrinter::Percent(curve.back() - curve.front()) << ")\n";
  return curve.back() > curve.front() ? 0 : 1;
}
